"""QUERY→TRANSFORM — the typed transform pipeline with and without the DOM.

A :class:`~repro.query.TypedTransform` renders one template instance per
query hit.  The DOM route builds a ``TypedElement`` tree for every hit
and serializes it; the segment route (``apply_text``) emits the final
markup through the PR 2 segment machinery, skipping the intermediate
tree entirely.  This experiment runs a product-listing transform over a
purchase order with many items — the XML→WML projection workload of the
paper's Sect. 8 outlook — and measures full-document transforms/sec for
both routes.

Acceptance floor (the ISSUE's criterion): the segment route must clear
**2x** the DOM route on the text-hole transform (1.5x in
``REPRO_BENCH_QUICK`` mode).  A two-rule :class:`TransformProgram`
(elements + attribute values) is measured and recorded without a floor.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer iterations, relaxed floor,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_query_transform.json``).
"""

import json
import os
import time

import pytest

from benchmarks import bench_floor
from repro.core import bind
from repro.dom.serialize import serialize
from repro.query import Query, Rule, TransformProgram, TypedTransform
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
ITEMS = 60 if QUICK else 200
PASSES = 20 if QUICK else 100
REPEATS = 3 if QUICK else 5
#: the ISSUE's acceptance criterion (CI-noise-tolerant in quick mode),
#: shared with the bench-gate via benchmarks/floors.json
FLOOR = bench_floor("query:transform_text", QUICK)

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict[str, float]] = {}

OPTION_TEMPLATE = '<option value="p">$name:text$</option>'
SKU_TEMPLATE = "<option>$sku:text$</option>"


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get(
        "REPRO_BENCH_JSON", "BENCH_query_transform.json"
    )
    if target and RESULTS:
        RESULTS["_meta"] = {"quick": QUICK, "items": ITEMS}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def _build_order(binding, items=ITEMS):
    """A purchase order carrying *items* distinct items."""
    f = binding.factory
    return f.create_purchase_order(
        f.create_ship_to(
            f.create_name("Alice Smith"),
            f.create_street("123 Maple Street"),
            f.create_city("Mill Valley"),
            f.create_state("CA"),
            f.create_zip("90952"),
        ),
        f.create_bill_to(
            f.create_name("Robert Smith"),
            f.create_street("8 Oak Avenue"),
            f.create_city("Old Town"),
            f.create_state("PA"),
            f.create_zip("95819"),
        ),
        f.create_items(
            *(
                f.create_item(
                    f.create_product_name(f"Product {number:03d}"),
                    f.create_quantity(1 + number % 9),
                    f.create_us_price(f"{number}.99"),
                    part_num=f"{number % 1000:03d}-AA",
                )
                for number in range(items)
            )
        ),
        order_date="1999-10-20",
    )


def _passes_per_second(action, passes=PASSES, repeats=REPEATS):
    """Best-of-*repeats* full-document passes/sec."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(passes):
            action()
        elapsed = time.perf_counter() - start
        rates.append(passes / elapsed)
    return max(rates)


def test_transform_text_throughput(capsys):
    """The headline number: apply_text vs apply+serialize, with floor."""
    po_binding = bind(PURCHASE_ORDER_SCHEMA)
    wml_binding = bind(WML_SCHEMA)
    order = _build_order(po_binding)
    transform = TypedTransform(
        binding_out=wml_binding,
        query=Query(po_binding, "purchaseOrder", "items/item/productName"),
        template=OPTION_TEMPLATE,
        hole="name",
    )
    assert transform.template.text_source is not None, (
        "template must segment-compile"
    )
    # Correctness precedes speed: both routes must emit identical bytes
    # for every hit.
    assert transform.apply_text(order) == [
        serialize(fragment) for fragment in transform.apply(order)
    ]
    dom_pps = _passes_per_second(
        lambda: [serialize(f) for f in transform.apply(order)]
    )
    text_pps = _passes_per_second(lambda: transform.apply_text(order))
    result = {
        "dom_passes_per_sec": round(dom_pps, 1),
        "text_passes_per_sec": round(text_pps, 1),
        "speedup": round(text_pps / dom_pps, 2),
        "items": ITEMS,
        "passes": PASSES,
        "repeats": REPEATS,
        "hits_per_pass": ITEMS,
    }
    RESULTS["query:transform_text"] = result
    print(
        f"\ntransform_text: dom {result['dom_passes_per_sec']:.0f}/s  "
        f"text {result['text_passes_per_sec']:.0f}/s  "
        f"speedup {result['speedup']:.2f}x"
    )
    assert result["speedup"] >= FLOOR, (
        f"apply_text is only {result['speedup']:.2f}x the DOM route "
        f"(need >= {FLOOR}x)"
    )


def test_transform_program_throughput(capsys):
    """A two-rule program (elements + attribute values), no floor.

    The attribute-value rule skips tree-walking on the query side
    already; recorded to document how the mix behaves.
    """
    po_binding = bind(PURCHASE_ORDER_SCHEMA)
    wml_binding = bind(WML_SCHEMA)
    order = _build_order(po_binding)
    program = TransformProgram(
        po_binding,
        wml_binding,
        "purchaseOrder",
        [
            Rule("items/item/productName", OPTION_TEMPLATE, "name"),
            Rule("items/item/@partNum", SKU_TEMPLATE, "sku"),
        ],
    )
    assert program.apply_text(order) == [
        serialize(fragment) for fragment in program.apply(order)
    ]
    dom_pps = _passes_per_second(
        lambda: [serialize(f) for f in program.apply(order)]
    )
    text_pps = _passes_per_second(lambda: program.apply_text(order))
    result = {
        "dom_passes_per_sec": round(dom_pps, 1),
        "text_passes_per_sec": round(text_pps, 1),
        "speedup": round(text_pps / dom_pps, 2),
        "items": ITEMS,
        "passes": PASSES,
        "repeats": REPEATS,
        "hits_per_pass": 2 * ITEMS,
    }
    RESULTS["query:transform_program"] = result
    print(
        f"\ntransform_program: dom {result['dom_passes_per_sec']:.0f}/s  "
        f"text {result['text_passes_per_sec']:.0f}/s  "
        f"speedup {result['speedup']:.2f}x"
    )
    # Still must never be slower than the route it replaces.
    assert result["speedup"] >= 1.0


def test_query_selection_rate(capsys):
    """Selection alone (no rendering), recorded for the doc table."""
    po_binding = bind(PURCHASE_ORDER_SCHEMA)
    order = _build_order(po_binding)
    child_query = Query(
        po_binding, "purchaseOrder", "items/item/productName"
    )
    descendant_query = Query(po_binding, "purchaseOrder", "//productName")
    assert len(child_query.apply(order)) == ITEMS
    assert len(descendant_query.apply(order)) == ITEMS
    result = {
        "child_axis_passes_per_sec": round(
            _passes_per_second(lambda: child_query.apply(order)), 1
        ),
        "descendant_axis_passes_per_sec": round(
            _passes_per_second(lambda: descendant_query.apply(order)), 1
        ),
        "items": ITEMS,
        "passes": PASSES,
        "repeats": REPEATS,
    }
    RESULTS["query:selection"] = result
    print(
        f"\nselection: child {result['child_axis_passes_per_sec']:.0f}/s  "
        f"descendant {result['descendant_axis_passes_per_sec']:.0f}/s"
    )

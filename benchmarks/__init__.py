"""Benchmark package: the shared acceptance-floor registry.

Every experiment's floor lives in one place — ``floors.json`` — keyed
by a short name.  Each entry records the artifact file the measured
number lands in, the dotted path to it inside that JSON, the full
floor, and (where CI quick mode is allowed to relax it) a
``quick_floor``.  The benchmark modules read their floors from here,
and ``scripts/check_bench.py`` — the CI ``bench-gate`` job — re-checks
the recorded artifacts against the very same file, so a floor can
never drift between what a benchmark asserts locally and what the
gate enforces on the run's artifacts.
"""

import json
import os

FLOORS_PATH = os.path.join(os.path.dirname(__file__), "floors.json")


def load_floors() -> dict:
    with open(FLOORS_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def bench_floor(name: str, quick: bool) -> float:
    """The floor to assert for *name*, honoring quick-mode relaxation."""
    entry = load_floors()[name]
    if quick:
        return entry.get("quick_floor", entry["floor"])
    return entry["floor"]

"""FIG1 — the purchase order document: parse, serialize, validate.

Regenerates the paper's Fig. 1 artifact (the document round-trips
byte-stably) and measures the substrate costs every later experiment
builds on.
"""

from repro.dom import parse_document, serialize
from repro.xsd import SchemaValidator
from repro.schemas import PURCHASE_ORDER_DOCUMENT


def test_fig1_roundtrip_artifact():
    """The Fig. 1 document parses and reserializes stably."""
    document = parse_document(PURCHASE_ORDER_DOCUMENT)
    once = serialize(document)
    assert serialize(parse_document(once)) == once
    assert document.document_element.tag_name == "purchaseOrder"
    items = document.get_elements_by_tag_name("item")
    assert len(items) == 2


def test_bench_parse_fig1(benchmark):
    result = benchmark(parse_document, PURCHASE_ORDER_DOCUMENT)
    assert result.document_element is not None


def test_bench_parse_medium(benchmark, po_text_medium):
    result = benchmark(parse_document, po_text_medium)
    assert len(result.get_elements_by_tag_name("item")) == 100


def test_bench_serialize_medium(benchmark, po_text_medium):
    document = parse_document(po_text_medium)
    text = benchmark(serialize, document)
    assert text.startswith("<purchaseOrder")


def test_bench_validate_fig1(benchmark, po_binding):
    validator = SchemaValidator(po_binding.schema)
    document = parse_document(PURCHASE_ORDER_DOCUMENT)
    errors = benchmark(validator.validate, document)
    assert errors == []

"""Scaling — binding generation cost vs schema size.

The paper's pipeline pays schema processing once per language; a
production user cares how that pay-once cost grows with schema size.
Synthetic schemas with N complex types (each a small sequence with an
attribute, chained by reference) are generated and bound.
"""

import pytest

from repro.core import bind


def synthetic_schema(type_count: int) -> str:
    """N independent complex types, one global element each, plus a
    root type whose choice references every element (star shape —
    reference *breadth* scales, reference *depth* stays flat, like
    real-world schemas)."""
    parts = ['<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">']
    for index in range(type_count):
        parts.append(
            f'<xsd:complexType name="T{index}"><xsd:sequence>'
            f'<xsd:element name="label{index}" type="xsd:string"/>'
            f'<xsd:element name="count{index}" type="xsd:int"'
            ' minOccurs="0"/>'
            "</xsd:sequence>"
            f'<xsd:attribute name="id{index}" type="xsd:ID"/>'
            "</xsd:complexType>"
        )
        parts.append(f'<xsd:element name="e{index}" type="T{index}"/>')
    refs = "".join(
        f'<xsd:element ref="e{index}"/>' for index in range(type_count)
    )
    parts.append(
        '<xsd:complexType name="Root"><xsd:sequence>'
        f'<xsd:choice minOccurs="0" maxOccurs="unbounded">{refs}</xsd:choice>'
        "</xsd:sequence></xsd:complexType>"
        '<xsd:element name="root" type="Root"/>'
    )
    parts.append("</xsd:schema>")
    return "".join(parts)


SIZES = (10, 50, 200)


@pytest.mark.parametrize("size", SIZES)
def test_bench_bind_scaling(benchmark, size):
    text = synthetic_schema(size)
    binding = benchmark(bind, text)
    assert len(binding.factory_names()) >= size


def test_scaling_is_roughly_linear():
    """Generation cost per type must not blow up with schema size."""
    import time

    costs = {}
    for size in SIZES:
        text = synthetic_schema(size)
        start = time.perf_counter()
        bind(text)
        costs[size] = time.perf_counter() - start
    per_type_small = costs[SIZES[0]] / SIZES[0]
    per_type_large = costs[SIZES[-1]] / SIZES[-1]
    # Allow generous constant-factor noise but catch quadratic blowup.
    assert per_type_large < per_type_small * 10


def test_large_binding_functional():
    binding = bind(synthetic_schema(100))
    factory = binding.factory
    leaf = factory.create_e99(getattr(factory, "create_label99")("x"))
    assert leaf.tag_name == "e99"

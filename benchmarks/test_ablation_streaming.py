"""Ablation — streaming validation vs build-DOM-then-validate.

For *incoming* documents (the ingestion direction), the DOM walk pays
tree construction before any checking starts; the streaming validator
checks straight off the parser events.
"""

import pytest

from repro.dom import parse_document
from repro.xsd import SchemaValidator, StreamingValidator

from benchmarks.conftest import purchase_order_text

SIZES = (10, 100, 1000)


@pytest.mark.parametrize("size", SIZES)
def test_bench_stream_validate(benchmark, po_binding, size):
    text = purchase_order_text(size)
    validator = StreamingValidator(po_binding.schema)
    errors = benchmark(validator.validate_text, text)
    assert errors == []


@pytest.mark.parametrize("size", SIZES)
def test_bench_dom_then_validate(benchmark, po_binding, size):
    text = purchase_order_text(size)
    validator = SchemaValidator(po_binding.schema)

    def run():
        return validator.validate(parse_document(text))

    assert benchmark(run) == []


def test_stream_and_dom_agree_on_corpus(po_binding):
    from repro.schemas import PURCHASE_ORDER_INVALID_DOCUMENTS

    stream = StreamingValidator(po_binding.schema)
    dom = SchemaValidator(po_binding.schema)
    for fault, text in PURCHASE_ORDER_INVALID_DOCUMENTS.items():
        assert bool(stream.validate_text(text)) == bool(
            dom.validate(parse_document(text))
        ), fault

"""INGEST — parse + validate to a typed tree, seed vs fused pipeline.

The seed route is three passes: the character-stepping reference parser
(preserved verbatim in ``repro.xml.reference``) feeds a generic DOM
build, then ``Binding.from_dom`` walks that DOM stepping the content
DFAs and walks the result again in ``check_valid``.  The fused route
(``repro.ingest``) is one pass: the scanning tokenizer's events step the
DFAs *during* parsing and allocate ``TypedElement`` nodes directly.

Measured here:

* **seed**   — reference parser -> DOM -> ``from_dom`` (the pre-PR path),
* **legacy** — scanning parser -> DOM -> ``from_dom`` (tokenizer win only),
* **fused**  — ``fused_parse`` (the full pipeline win),
* **fused (object DFAs)** — ``fused_parse(use_tables=False)``: the
  golden-reference route and the denominator for the table-driven floor,
* **turbo**  — ``table_parse``: flat integer DFA tables stepped by the
  single-alternation scanner (both the stdlib regex lane and, when
  numpy is importable, the vectorized structural-index lane),
* **tokenizer** — event iteration alone, both parsers,
* **bulk**   — ``validate_files`` through the persistent
  ``ValidationPool`` (warm workers, sharded batches), when cores allow.

Acceptance floors (the ISSUEs' criteria): fused must clear **3x** the
seed pipeline on the purchase-order and XHTML corpora (1.5x under
``REPRO_BENCH_QUICK``); the table-driven turbo lane must clear **2x**
the object-DFA fused route on both corpora (``ingest:table_driven:*``
in floors.json); and ``--jobs 4`` must clear **2.5x** ``--jobs 1``
over a 100-document corpus (``ingest:bulk_scaling``) — the latter only
on machines with at least four CPUs; elsewhere the timings are still
recorded but the artifact carries a ``floor_skipped`` marker that
``scripts/check_bench.py`` honors (a process pool cannot beat inline
execution without cores to run on).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer iterations, relaxed floor,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_parse_ingest.json``).
"""

import json
import multiprocessing
import os
import time

import pytest

from benchmarks import bench_floor
from benchmarks.conftest import purchase_order_text
from repro.core import bind
from repro.dom.document import Document
from repro.ingest import fused_parse, legacy_parse, table_parse, validate_files
from repro.ingest import structural
from repro.schemas import PURCHASE_ORDER_SCHEMA, XHTML_SUBSET_SCHEMA
from repro.xml.events import Characters, EndElement, StartElement
from repro.xml.parser import PullParser
from repro.xml.reference import ReferencePullParser

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REPEATS = 3 if QUICK else 7
ITEMS = 100 if QUICK else 300
BULK_DOCUMENTS = 40 if QUICK else 100
#: the ISSUE's acceptance criterion (relaxed under quick mode), shared
#: with the CI bench-gate via benchmarks/floors.json
FLOOR = bench_floor("ingest_po_speedup", QUICK)
#: the table-driven turbo lane vs the object-DFA fused route (PR 7)
TABLE_FLOOR = bench_floor("ingest:table_driven:po", QUICK)
#: the persistent-pool scaling criterion (PR 8); the artifact records a
#: ``floor_skipped`` marker instead of asserting when the machine has
#: too few cores for a pool to beat inline execution
SCALING_FLOOR = bench_floor("ingest:bulk_scaling", QUICK)

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get("REPRO_BENCH_JSON", "BENCH_parse_ingest.json")
    if target and RESULTS:
        RESULTS["_meta"] = {"quick": QUICK}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def xhtml_page_text(rows: int) -> str:
    """A valid XHTML-subset page: mixed content, links, lists, a table."""
    blocks = []
    for index in range(rows):
        blocks.append(
            f"<h2>Section {index}</h2>"
            f"<p>Paragraph <b>{index}</b> with <i>mixed</i> content and "
            f'a <a href="/item/{index}">link {index}</a>.<br/></p>'
            f"<ul><li>first {index}</li><li>second &amp; third</li></ul>"
        )
        if index % 10 == 0:
            blocks.append(
                "<table>"
                + "".join(
                    f"<tr><td>cell {index}.{row}</td><td>more</td></tr>"
                    for row in range(3)
                )
                + "</table>"
            )
    return (
        "<html><head><title>benchmark page</title>"
        '<meta name="generator" content="bench"/></head>'
        "<body>" + "".join(blocks) + "</body></html>"
    )


def _best_seconds_interleaved(actions, repeats=REPEATS):
    """Best-of-*repeats* for each action, measured round-robin.

    Interleaving means a load spike on a shared runner degrades every
    pipeline's round rather than one pipeline's entire measurement, so
    the *ratios* (which the floors assert on) stay stable even when the
    absolute numbers wobble.
    """
    best = [None] * len(actions)
    for _ in range(repeats):
        for index, action in enumerate(actions):
            start = time.perf_counter()
            action()
            elapsed = time.perf_counter() - start
            if best[index] is None or elapsed < best[index]:
                best[index] = elapsed
    return best


def _seed_pipeline(binding, text):
    """The seed ingest: reference parse -> generic DOM -> ``from_dom``."""
    document = Document()
    stack = [document]
    for event in ReferencePullParser(text):
        kind = type(event)
        if kind is StartElement:
            element = document.create_element(event.name)
            for name, value in event.attributes:
                element.set_attribute(name, value)
            stack[-1].append_child(element)
            stack.append(element)
        elif kind is EndElement:
            stack.pop()
        elif kind is Characters:
            stack[-1].append_child(document.create_text_node(event.data))
    return binding.from_dom(document.document_element)


def _drain(parser_cls, text):
    for _ in parser_cls(text):
        pass


def _measure_corpus(label, schema_text, text):
    binding = bind(schema_text)
    # Correctness precedes speed: every route must build the same tree.
    from repro.dom.serialize import serialize

    golden = serialize(_seed_pipeline(binding, text))
    assert serialize(fused_parse(binding, text)) == golden
    assert serialize(fused_parse(binding, text, use_tables=False)) == golden
    assert serialize(table_parse(binding, text, lane="stdlib")) == golden
    index_available = structural.markup_index(text) is not None
    if index_available:
        assert serialize(table_parse(binding, text, lane="index")) == golden
    actions = [
        lambda: _seed_pipeline(binding, text),
        lambda: legacy_parse(binding, text),
        lambda: fused_parse(binding, text),
        lambda: fused_parse(binding, text, use_tables=False),
        lambda: table_parse(binding, text),
        lambda: table_parse(binding, text, lane="stdlib"),
        lambda: _drain(ReferencePullParser, text),
        lambda: _drain(PullParser, text),
    ]
    if index_available:
        actions.append(lambda: table_parse(binding, text, lane="index"))
    timings = _best_seconds_interleaved(actions)
    (seed, legacy, fused, fused_object, turbo, turbo_stdlib,
     reference_scan, fast_scan) = timings[:8]
    turbo_index = timings[8] if index_available else None
    result = {
        "document_bytes": len(text),
        "seed_ms": round(seed * 1000, 2),
        "legacy_ms": round(legacy * 1000, 2),
        "fused_ms": round(fused * 1000, 2),
        "fused_object_ms": round(fused_object * 1000, 2),
        "turbo_ms": round(turbo * 1000, 2),
        "turbo_stdlib_ms": round(turbo_stdlib * 1000, 2),
        "turbo_index_ms": (
            round(turbo_index * 1000, 2) if turbo_index is not None else None
        ),
        "index_lane_available": index_available,
        "reference_tokenize_ms": round(reference_scan * 1000, 2),
        "fast_tokenize_ms": round(fast_scan * 1000, 2),
        "tokenizer_speedup": round(reference_scan / fast_scan, 2),
        "fused_vs_seed": round(seed / fused, 2),
        "fused_vs_legacy": round(legacy / fused, 2),
        "turbo_vs_fused_object": round(fused_object / turbo, 2),
        "turbo_vs_seed": round(seed / turbo, 2),
        "repeats": REPEATS,
    }
    RESULTS[label] = result
    print(
        f"\n{label}: seed {result['seed_ms']}ms  legacy {result['legacy_ms']}ms  "
        f"fused {result['fused_ms']}ms  -> {result['fused_vs_seed']}x vs seed "
        f"(tokenizer alone {result['tokenizer_speedup']}x)\n"
        f"{label}: turbo {result['turbo_ms']}ms "
        f"(stdlib {result['turbo_stdlib_ms']}ms, "
        f"index {result['turbo_index_ms']}ms) "
        f"-> {result['turbo_vs_fused_object']}x vs object-DFA fused, "
        f"{result['turbo_vs_seed']}x vs seed"
    )
    return result


def test_purchase_order_ingest(capsys):
    """The headline floors: fused >= 3x seed, turbo >= 2x object fused."""
    text = purchase_order_text(ITEMS)
    result = _measure_corpus("purchase_order", PURCHASE_ORDER_SCHEMA, text)
    assert result["fused_vs_seed"] >= FLOOR, (
        f"fused ingest is only {result['fused_vs_seed']:.2f}x the seed "
        f"pipeline (need >= {FLOOR}x)"
    )
    assert result["turbo_vs_fused_object"] >= TABLE_FLOOR, (
        f"table-driven ingest is only "
        f"{result['turbo_vs_fused_object']:.2f}x the object-DFA fused "
        f"route (need >= {TABLE_FLOOR}x)"
    )


def test_xhtml_ingest(capsys):
    """The same floors on mixed-content XHTML."""
    text = xhtml_page_text(ITEMS)
    result = _measure_corpus("xhtml", XHTML_SUBSET_SCHEMA, text)
    assert result["fused_vs_seed"] >= FLOOR, (
        f"fused ingest is only {result['fused_vs_seed']:.2f}x the seed "
        f"pipeline (need >= {FLOOR}x)"
    )
    assert result["turbo_vs_fused_object"] >= TABLE_FLOOR, (
        f"table-driven ingest is only "
        f"{result['turbo_vs_fused_object']:.2f}x the object-DFA fused "
        f"route (need >= {TABLE_FLOOR}x)"
    )


def test_bulk_scaling(tmp_path, capsys):
    """``--jobs 4`` must be >= 2.5x ``--jobs 1`` over 100 documents.

    The parallel run goes through the persistent :class:`ValidationPool`
    (workers warm-started once, batches sharded by consistent hash), so
    this floor measures the pool, not per-task spawn cost.  On machines
    with fewer than four cores the timings are still recorded but the
    floor assertion is replaced by a ``floor_skipped`` marker in the
    artifact — ``scripts/check_bench.py`` honors the marker, so the CI
    gate distinguishes "skipped for lack of cores" from "regressed".
    A 1-CPU container cannot exhibit process-pool scaling at all; its
    jobs=4 request clamps to a single worker.
    """
    cores = multiprocessing.cpu_count()
    corpus = []
    for index in range(BULK_DOCUMENTS):
        path = tmp_path / f"doc{index}.xml"
        path.write_text(
            purchase_order_text(30, seed=index), encoding="utf-8"
        )
        corpus.append(path)
    cache_dir = str(tmp_path / "cache")
    # Pre-warm the compilation cache so workers measure ingest, not XSD
    # compilation; disable the verdict cache so documents are re-parsed.
    validate_files(
        PURCHASE_ORDER_SCHEMA, corpus[:1], cache_dir=cache_dir,
        use_verdict_cache=False,
    )

    def run(jobs):
        start = time.perf_counter()
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=jobs,
            cache_dir=cache_dir, use_verdict_cache=False,
        )
        elapsed = time.perf_counter() - start
        assert report["summary"]["invalid"] == 0
        return elapsed, report

    serial = min(run(1)[0] for _ in range(2))
    parallel, parallel_report = run(4)
    retry, retry_report = run(4)
    if retry < parallel:
        parallel, parallel_report = retry, retry_report
    floor_skipped = cores < 4
    skip_reason = (
        f"parallel-scaling floor needs >= 4 CPUs (have {cores})"
        if floor_skipped
        else None
    )
    result = {
        "documents": BULK_DOCUMENTS,
        "cpu_count": cores,
        "jobs1_ms": round(serial * 1000, 2),
        "jobs4_ms": round(parallel * 1000, 2),
        "jobs4_effective": parallel_report["jobs"],
        "batch_size": parallel_report["batch_size"],
        "scaling": round(serial / parallel, 2),
        "floor_skipped": floor_skipped,
        "floor_skip_reason": skip_reason,
    }
    RESULTS["bulk_scaling"] = result
    print(
        f"\nbulk: jobs=1 {result['jobs1_ms']}ms  jobs=4 {result['jobs4_ms']}ms"
        f" ({result['jobs4_effective']} effective, "
        f"batches of {result['batch_size']})"
        f"  -> {result['scaling']}x on {cores} cores"
    )
    if floor_skipped:
        pytest.skip(f"{skip_reason}; timings recorded without the floor")
    assert result["scaling"] >= SCALING_FLOOR, (
        f"--jobs 4 is only {result['scaling']:.2f}x --jobs 1 "
        f"(need >= {SCALING_FLOOR}x on {cores} cores)"
    )

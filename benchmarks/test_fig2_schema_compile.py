"""FIG2/3 — the purchase order schema: component compilation costs.

The paper's pipeline pays schema processing once, at generation time;
this experiment measures that pay-once cost for each stage (parse,
normalize, generate interfaces, materialize classes).
"""

from repro.xsd import parse_schema
from repro.core import bind, generate_interfaces, normalize
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA, XHTML_SUBSET_SCHEMA


def test_fig2_schema_artifact():
    schema = parse_schema(PURCHASE_ORDER_SCHEMA)
    assert set(schema.elements) == {"purchaseOrder", "comment"}
    assert set(schema.types) == {
        "PurchaseOrderType", "USAddress", "Items", "SKU"
    }


def test_bench_parse_schema(benchmark):
    schema = benchmark(parse_schema, PURCHASE_ORDER_SCHEMA)
    assert "PurchaseOrderType" in schema.types


def test_bench_normalize(benchmark):
    def run():
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        return normalize(schema)

    result = benchmark(run)
    assert result.generated_type_names


def test_bench_generate_interfaces(benchmark):
    def run():
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        normalize(schema)
        return generate_interfaces(schema)

    model = benchmark(run)
    assert "purchaseOrderElement" in model


def test_bench_full_binding(benchmark):
    binding = benchmark(bind, PURCHASE_ORDER_SCHEMA)
    assert "create_purchase_order" in binding.factory_names()


def test_bench_full_binding_wml(benchmark):
    binding = benchmark(bind, WML_SCHEMA)
    assert "create_card" in binding.factory_names()


def test_bench_full_binding_xhtml(benchmark):
    binding = benchmark(bind, XHTML_SUBSET_SCHEMA)
    assert "create_html" in binding.factory_names()

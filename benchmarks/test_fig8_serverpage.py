"""FIG8 — the Java-Server-Page-style baseline on the directory page.

Regenerates the Sect. 5 scenario with the string-template engine and
measures its render cost; the companion "wrong server page" variant
shows the engine accepting a page that emits broken markup.
"""

import pytest

from repro.dom import parse_document
from repro.errors import XmlSyntaxError
from repro.serverpages import ServerPage
from repro.xsd import SchemaValidator

DIRECTORY_PAGE = (
    '<wml><card id="dirs" title="Directories"><p>'
    "<b><%= currentDir %></b><br/>"
    '<select name="directories">'
    '<option value="<%= parentDir %>">..</option>'
    "<% for subDir, label in subDirs: %>"
    '<option value="<%= subDir %>"><%= label %></option>'
    "<% end %>"
    "</select><br/>"
    "</p></card></wml>"
)

#: Fig. 8 variant with the paper's '<TITLE>' mistake baked in.
WRONG_PAGE = DIRECTORY_PAGE.replace("</select>", "<TITLE></select>")

CONTEXT = {
    "currentDir": "/workspace/media",
    "parentDir": "/workspace",
    "subDirs": [
        ("/workspace/media/audio", "audio"),
        ("/workspace/media/video", "video"),
    ],
}


def test_fig8_artifact_renders_valid_wml(wml_binding):
    output = ServerPage(DIRECTORY_PAGE).render(**CONTEXT)
    document = parse_document(output)
    assert SchemaValidator(wml_binding.schema).validate(document) == []
    assert output.count("<option") == 3


def test_fig8_wrong_page_accepted_by_engine():
    """The paper's point: the engine cannot tell the page is wrong."""
    output = ServerPage(WRONG_PAGE).render(**CONTEXT)
    with pytest.raises(XmlSyntaxError):
        parse_document(output)


def test_bench_serverpage_compile(benchmark):
    page = benchmark(ServerPage, DIRECTORY_PAGE)
    assert page.render(**CONTEXT)


def test_bench_serverpage_render(benchmark):
    page = ServerPage(DIRECTORY_PAGE)
    output = benchmark(page.render, **CONTEXT)
    assert "<select" in output


def test_bench_serverpage_render_many_options(benchmark):
    page = ServerPage(DIRECTORY_PAGE)
    context = dict(CONTEXT)
    context["subDirs"] = [(f"/d/{i}", f"d{i}") for i in range(200)]
    output = benchmark(page.render, **context)
    assert output.count("<option") == 201

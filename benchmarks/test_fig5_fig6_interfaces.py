"""FIG5/FIG6 — interface generation under both choice strategies.

Regenerates the union-type interface of Fig. 5 and the inheritance
interface (with merged naming) of Fig. 6, and measures generation cost.
"""

from repro.xsd import parse_schema
from repro.core import generate_interfaces, normalize, render_idl
from repro.core.generate import ChoiceStrategy
from repro.schemas.variants import PURCHASE_ORDER_CHOICE_SCHEMA


def _idl(strategy):
    schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
    normalize(schema)
    return render_idl(generate_interfaces(schema, strategy))


def test_fig5_union_artifact():
    idl = _idl(ChoiceStrategy.UNION)
    assert "typedef union PurchaseOrderTypeCC1Group" in idl
    assert "case singAddr: singAddrElement singAddr;" in idl
    assert "case twoAddr: twoAddrElement twoAddr;" in idl


def test_fig6_inheritance_artifact():
    idl = _idl(ChoiceStrategy.INHERITANCE)
    assert "abstract interface PurchaseOrderTypeCC1Group" in idl
    assert "interface singAddrElement: PurchaseOrderTypeCC1Group" in idl
    assert "interface twoAddrElement: PurchaseOrderTypeCC1Group" in idl
    assert (
        "attribute PurchaseOrderTypeCC1Group PurchaseOrderTypeCC1;" in idl
    )


def test_bench_generate_idl_inheritance(benchmark):
    idl = benchmark(_idl, ChoiceStrategy.INHERITANCE)
    assert "PurchaseOrderTypeCC1Group" in idl


def test_bench_generate_idl_union(benchmark):
    idl = benchmark(_idl, ChoiceStrategy.UNION)
    assert "typedef union" in idl

#!/usr/bin/env python3
"""Quickstart: the purchase order language, end to end.

Covers the core loop of the paper:

1. bind the schema (generate typed classes),
2. build a document through the typed factory — valid by construction,
3. see invalid constructions rejected *at the point of the mistake*,
4. serialize without any validation pass,
5. read a document back into typed objects (unmarshalling = validation).

Run:  python examples/quickstart.py
"""

import datetime

from repro import bind, parse_document, serialize, validate
from repro.errors import VdomTypeError
from repro.schemas import PURCHASE_ORDER_SCHEMA


def main() -> None:
    # 1. The "preprocessor generator" step: one call, all classes.
    binding = bind(PURCHASE_ORDER_SCHEMA)
    f = binding.factory
    print(f"bound schema: {binding}\n")

    # 2. Build the paper's Fig. 1 document through typed constructors.
    order = f.create_purchase_order(
        f.create_ship_to(
            f.create_name("Alice Smith"),
            f.create_street("123 Maple Street"),
            f.create_city("Mill Valley"),
            f.create_state("CA"),
            f.create_zip("90952"),
        ),
        f.create_bill_to(
            f.create_name("Robert Smith"),
            f.create_street("8 Oak Avenue"),
            f.create_city("Old Town"),
            f.create_state("PA"),
            f.create_zip("95819"),
        ),
        f.create_comment("Hurry, my lawn is going wild"),
        f.create_items(
            f.create_item(
                f.create_product_name("Lawnmower"),
                f.create_quantity(1),
                f.create_us_price("148.95"),
                f.create_comment("Confirm this is electric"),
                part_num="872-AA",
            ),
            f.create_item(
                f.create_product_name("Baby Monitor"),
                f.create_quantity(1),
                f.create_us_price("39.98"),
                f.create_ship_date(datetime.date(1999, 5, 21)),
                part_num="926-AA",
            ),
        ),
        order_date=datetime.date(1999, 10, 20),
    )

    # Typed access: attributes come back as Python values.
    print("order date:", order.order_date, type(order.order_date).__name__)
    for item in order.items.item_list:
        print(
            f"  {item.part_num}: {item.product_name.content!r} "
            f"x{item.quantity.value} @ {item.us_price.value}"
        )

    # 3. Invalid constructions are rejected where they happen.
    for label, attempt in [
        ("quantity over the facet bound", lambda: f.create_quantity(100)),
        ("bad SKU pattern", lambda: f.create_item(
            f.create_product_name("x"),
            f.create_quantity(1),
            f.create_us_price("1.0"),
            part_num="WRONG",
        )),
        ("wrong child order", lambda: f.create_ship_to(
            f.create_street("street first?"),
            f.create_name("name second?"),
            f.create_city("c"), f.create_state("s"), f.create_zip("1"),
        )),
    ]:
        try:
            attempt()
        except VdomTypeError as error:
            print(f"rejected ({label}): {error}")

    # 4. Serialize — no validation run needed; it cannot be invalid.
    document = binding.document(order)
    text = serialize(document, pretty=True)
    print("\nserialized document:\n" + text[:400] + "  ...\n")

    # Independent confirmation with the runtime validator:
    assert validate(parse_document(text), binding.schema) == []
    print("runtime validator agrees: 0 errors (as it always must)")

    # 5. Unmarshal an incoming document into typed objects.
    incoming = parse_document(text)
    typed = binding.from_dom(incoming.document_element)
    total = sum(
        item.us_price.value * item.quantity.value
        for item in typed.items.item_list
    )
    print(f"order total computed from typed values: ${total}")


if __name__ == "__main__":
    main()

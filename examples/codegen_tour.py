#!/usr/bin/env python3
"""A tour of the generation tooling (the paper's Fig. 9 pipeline).

Shows each artifact the toolchain produces for the purchase-order
schema: the IDL interfaces (Sect. 3 / Appendix A), the generated Python
binding module, and a P-XML module before and after preprocessing.

Run:  python examples/codegen_tour.py
"""

from repro import bind, generate_python_module, parse_schema, render_idl
from repro.core import generate_interfaces, normalize
from repro.pxml import preprocess_module
from repro.schemas import PURCHASE_ORDER_SCHEMA

APPLICATION = '''\
from repro.core import bind
from repro.schemas import PURCHASE_ORDER_SCHEMA

binding = bind(PURCHASE_ORDER_SCHEMA)
factory = binding.factory

def confirmation(customer_name, items):
    ship_to = pxml(
        "<shipTo>"
        "$n:name$"
        "<street>123 Maple Street</street>"
        "<city>Mill Valley</city>"
        "<state>CA</state>"
        "<zip>90952</zip>"
        "</shipTo>"
    )
    return ship_to
'''


def main() -> None:
    print("=" * 70)
    print("1. generated IDL interfaces (Appendix A)")
    print("=" * 70)
    schema = parse_schema(PURCHASE_ORDER_SCHEMA)
    normalize(schema)
    print(render_idl(generate_interfaces(schema)))

    print("=" * 70)
    print("2. generated Python binding module (first 60 lines)")
    print("=" * 70)
    module_source = generate_python_module(
        PURCHASE_ORDER_SCHEMA, title="Purchase order binding"
    )
    print("\n".join(module_source.splitlines()[:60]))
    print("  ...")

    print("=" * 70)
    print("3. P-XML module, before preprocessing")
    print("=" * 70)
    print(APPLICATION)

    print("=" * 70)
    print("4. the same module after preprocessing (pure V-DOM calls)")
    print("=" * 70)
    binding = bind(PURCHASE_ORDER_SCHEMA)
    result = preprocess_module(APPLICATION, binding)
    print(result.source)
    print(f"({result.replaced} constructor(s) replaced)")


if __name__ == "__main__":
    main()

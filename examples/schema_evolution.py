#!/usr/bin/env python3
"""The naming-scheme story of Section 3, made runnable.

The schema evolves: the address choice group gains a ``multAddr``
alternative.  Under *synthesized* naming every use site of the group
type breaks; under *inherited* (and the paper's *merged*) naming all
existing names survive.  The script prints the generated interface
names before and after, per scheme, plus the Fig. 5 vs Fig. 6 IDL.

Run:  python examples/schema_evolution.py
"""

from repro import parse_schema, render_idl
from repro.core import generate_interfaces, normalize
from repro.core.generate import ChoiceStrategy
from repro.core.naming import (
    ExplicitFirstNaming,
    InheritedNaming,
    MergedNaming,
    SynthesizedNaming,
)
from repro.schemas.variants import (
    PURCHASE_ORDER_CHOICE3_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
)

SCHEMES = [
    SynthesizedNaming(),
    InheritedNaming(),
    MergedNaming(),
    ExplicitFirstNaming(),
]


def names_for(schema_text: str, scheme) -> set[str]:
    schema = parse_schema(schema_text)
    normalize(schema, scheme)
    return {interface.key for interface in generate_interfaces(schema)}


def main() -> None:
    print("schema evolution: choice group gains a third alternative\n")
    print(f"{'scheme':16s} {'survive':>8s} {'broken':>7s} {'new':>5s}   broken names")
    for scheme in SCHEMES:
        before = names_for(PURCHASE_ORDER_CHOICE_SCHEMA, scheme)
        after = names_for(PURCHASE_ORDER_CHOICE3_SCHEMA, scheme)
        broken = sorted(before - after)
        print(
            f"{scheme.name:16s} {len(before & after):8d} "
            f"{len(broken):7d} {len(after - before):5d}   "
            + (", ".join(broken) if broken else "-")
        )

    print("\n--- Fig. 6: inheritance interfaces (merged naming) ---\n")
    schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
    normalize(schema)
    idl = render_idl(generate_interfaces(schema))
    for line in idl.splitlines():
        if "Group" in line or "PurchaseOrderTypeType" in line:
            print(line)

    print("\n--- Fig. 5: the rejected union alternative ---\n")
    schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
    normalize(schema)
    idl = render_idl(generate_interfaces(schema, ChoiceStrategy.UNION))
    start = idl.find("typedef union")
    print(idl[start : idl.find("}", start) + 1])

    print(
        "\nthe paper's conclusion: inherited naming for choices, "
        "synthesized for sequences,\nexplicit named groups when evolving "
        "sequences in the middle."
    )


if __name__ == "__main__":
    main()

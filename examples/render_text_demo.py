#!/usr/bin/env python3
"""Segment-compiled rendering: the serving hot path without a DOM.

The paper establishes validity at *preparation* time; this demo shows
the runtime consequence.  A checked template is partitioned into
precomputed static markup segments plus dynamic holes, so
``render_text(**values)`` emits the final string directly — no
``TypedElement`` tree, no serializer walk — while staying byte-identical
to ``serialize(render(...))`` and keeping every runtime check the typed
constructors would have made.

Run:  python examples/render_text_demo.py
"""

from repro import bind, serialize
from repro.errors import VdomTypeError
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA, XHTML_SUBSET_SCHEMA

#: Templates shared with the equivalence tests (tests/pxml) — each entry
#: is (schema, template source, example hole values).
DEMO_TEMPLATES = [
    (
        PURCHASE_ORDER_SCHEMA,
        """<shipTo country="US">
              <name>$n$</name>
              <street>123 Maple Street</street>
              <city>Mill Valley</city>
              <state>CA</state>
              <zip>90952</zip>
           </shipTo>""",
        {"n": "Alice Smith"},
    ),
    (
        PURCHASE_ORDER_SCHEMA,
        '<item partNum="$pn$"><productName>$p$</productName>'
        "<quantity>$q$</quantity><USPrice>$price$</USPrice></item>",
        {"pn": "872-AA", "p": "Lawnmower <electric>", "q": 1,
         "price": "148.95"},
    ),
    (
        XHTML_SUBSET_SCHEMA,
        "<p>updated: <b>$when:text$</b> &amp; saved</p>",
        {"when": "just now"},
    ),
]


def main() -> None:
    for schema, source, values in DEMO_TEMPLATES:
        binding = bind(schema)
        template = Template(binding, source)
        fast = template.render_text(**values)
        slow = serialize(template.render(**values))
        assert fast == slow, "fast path must match render+serialize"
        print(fast)
        print()

    # The generated direct-to-text function is a reviewable artifact:
    binding = bind(PURCHASE_ORDER_SCHEMA)
    template = Template(
        binding,
        '<item partNum="999-ZZ"><productName>$p$</productName>'
        "<quantity>1</quantity><USPrice>9.99</USPrice></item>",
    )
    print("generated render_text source:")
    print(template.text_source)

    # Validation still happens — at the holes, where it is still needed:
    try:
        template.render_text(p=object())
    except VdomTypeError as error:
        print(f"rejected: {error}")


if __name__ == "__main__":
    main()

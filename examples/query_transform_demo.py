#!/usr/bin/env python3
"""Typed queries & transforms: the paper's Sect. 8 outlook, executable.

A path query is compiled against the schema — a step no instance could
ever match is rejected when the query is *defined*, and the result type
is known statically.  A transform program wires queries into P-XML
template holes, checked against both the input and the output schema:
a program that constructs cannot emit an invalid fragment, and its
``apply_text`` route renders each hit straight to final markup through
the segment pipeline, byte-identical to serializing the DOM route.

Run:  python examples/query_transform_demo.py
"""

from repro import bind, serialize
from repro.errors import QueryError
from repro.ingest import parse_typed
from repro.query import Query, Rule, TransformProgram, select
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_SCHEMA,
    WML_SCHEMA,
)


def main() -> None:
    po_binding = bind(PURCHASE_ORDER_SCHEMA)
    wml_binding = bind(WML_SCHEMA)
    order = parse_typed(po_binding, PURCHASE_ORDER_DOCUMENT)

    # -- selection: axes, unions, attributes, predicates ----------------
    print("product names: ", [
        hit.content for hit in select(order, "items/item/productName")
    ])
    print("all comments:  ", [
        hit.content for hit in select(order, "//comment")
    ])
    print("both addresses:", [
        hit.content for hit in select(order, "(shipTo|billTo)/name")
    ])
    print("part numbers:  ", select(order, "items/item/@partNum"))
    # Chained predicates are XPath-style: [1] counts the survivors of
    # the attribute filter, so this finds the (second) monitored item.
    print("filtered [1]:  ", [
        hit.product_name.content
        for hit in select(order, "items/item[@partNum='926-AA'][1]")
    ])

    # -- static rejection: impossible queries never run ------------------
    for path in ("items/chapter", "shipTo[2]", "items/item[0]"):
        try:
            Query(po_binding, "purchaseOrder", path)
        except QueryError as error:
            print(f"rejected at definition time: {error}")

    # -- a typed transform program: PO -> WML listing --------------------
    program = TransformProgram(
        po_binding,
        wml_binding,
        "purchaseOrder",
        [
            Rule(
                "items/item/productName",
                '<option value="p">$name:text$</option>',
                "name",
                label="names",
            ),
            Rule(
                "items/item/@partNum",
                "<option>$sku:text$</option>",
                "sku",
                label="skus",
            ),
        ],
    )
    print("\nstatic result classes:", [
        cls.__name__ for cls in program.result_classes()
    ])
    fast = program.apply_text(order)
    slow = [serialize(fragment) for fragment in program.apply(order)]
    assert fast == slow, "segment route must match the DOM route"
    for piece in fast:
        print(piece)

    # A rule that could emit an invalid document never constructs:
    try:
        TransformProgram(
            po_binding,
            po_binding,
            "purchaseOrder",
            [
                Rule(
                    "items/item/@partNum",
                    "<items><item partNum='111-AB'>"
                    "<productName>x</productName><quantity>1</quantity>"
                    "<USPrice>1.0</USPrice>$c:comment$</item></items>",
                    "c",
                    label="sku-into-element-hole",
                ),
            ],
        )
    except QueryError as error:
        print(f"\nrejected at definition time: {error}")


if __name__ == "__main__":
    main()

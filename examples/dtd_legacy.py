#!/usr/bin/env python3
"""The prior-work pipeline: V-DOM generated from a DTD ([13], [14]).

The authors' earlier system derived V-DOM interfaces from DTDs; the
paper replaced DTDs with XML Schema because "the capabilities of
describing the document structure on the basis of regular expressions
is rather limited."  This example runs both pipelines on the purchase
order language and shows exactly what the upgrade bought:

* both enforce *structure* (order, required children, attributes),
* only the schema-derived binding enforces *values* (date types,
  decimal prices, the SKU pattern, the quantity facet).

Run:  python examples/dtd_legacy.py
"""

from repro import bind, parse_document
from repro.dtd import bind_dtd
from repro.errors import VdomTypeError
from repro.schemas import (
    PURCHASE_ORDER_DTD,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
)


def main() -> None:
    legacy = bind_dtd(PURCHASE_ORDER_DTD)
    modern = bind(PURCHASE_ORDER_SCHEMA)
    print(f"DTD-derived binding:    {legacy}")
    print(f"schema-derived binding: {modern}\n")

    print("structural enforcement works in both:")
    for label, binding in (("DTD", legacy), ("Schema", modern)):
        try:
            binding.factory.create_purchase_order(
                binding.factory.create_comment("only a comment")
            )
        except VdomTypeError as error:
            print(f"  [{label}] {error}")

    print("\nvalue-level enforcement only exists in the schema binding:")
    bad_quantity = legacy.factory.create_quantity("ninety-nine")
    print(f"  [DTD]    accepted <quantity>{bad_quantity.content}</quantity>")
    try:
        modern.factory.create_quantity("ninety-nine")
    except VdomTypeError as error:
        print(f"  [Schema] {error}")

    print("\ndetection coverage over the 10-fault corpus:")
    print(f"{'fault':32s} {'DTD binding':12s} {'Schema binding'}")
    for fault in sorted(PURCHASE_ORDER_INVALID_DOCUMENTS):
        text = PURCHASE_ORDER_INVALID_DOCUMENTS[fault]
        verdicts = []
        for binding in (legacy, modern):
            try:
                binding.from_dom(parse_document(text).document_element)
                verdicts.append("MISSED")
            except VdomTypeError:
                verdicts.append("caught")
        print(f"{fault:32s} {verdicts[0]:12s} {verdicts[1]}")

    print(
        "\nthe four misses are exactly the constructs DTDs cannot "
        "express — the paper's Sect. 1 motivation for XML Schema."
    )


if __name__ == "__main__":
    main()

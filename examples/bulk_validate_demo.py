#!/usr/bin/env python3
"""Bulk validation: the fused ingest path over a directory of documents.

Reading a document into typed V-DOM objects *is* a validation — the
content-model DFAs step during parsing, so an invalid document never
materializes.  ``validate_files`` turns that into a batch tool: a corpus
of documents is checked against one schema, optionally across a process
pool (``jobs=N``), with per-document verdicts cached so a re-run only
re-parses what changed.

The same machinery backs the CLI:

    vdom-generate validate schema.xsd docs/*.xml --jobs 4 --report out.json

Run:  python examples/bulk_validate_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro.ingest import fused_parse, ingest, validate_files
from repro.core import bind
from repro.dom.serialize import serialize
from repro.errors import VdomTypeError
from repro.schemas import PURCHASE_ORDER_DOCUMENT, PURCHASE_ORDER_SCHEMA
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS


def main() -> None:
    # -- the fused path itself -------------------------------------------
    binding = bind(PURCHASE_ORDER_SCHEMA)
    order = fused_parse(binding, PURCHASE_ORDER_DOCUMENT)
    print(f"fused parse -> {type(order).__name__}, "
          f"{len(order.child_elements())} children, "
          f"{len(serialize(order))} bytes when serialized")

    # An invalid document is rejected mid-parse, with the same error the
    # legacy parse-then-bind route would raise:
    try:
        fused_parse(binding, PURCHASE_ORDER_INVALID_DOCUMENTS["bad-sku"])
    except VdomTypeError as error:
        print(f"rejected during parsing: {error}")

    # Documents the fused path cannot take (a DOCTYPE needs the DTD
    # machinery) fall back to the legacy route transparently:
    result = ingest(binding, "<!DOCTYPE purchaseOrder>\n" + PURCHASE_ORDER_DOCUMENT)
    print(f"doctype document ingested via fused route: {result.fused}")

    # -- a corpus on disk ------------------------------------------------
    with tempfile.TemporaryDirectory() as workdir:
        root = Path(workdir)
        corpus = []
        for index in range(8):
            path = root / f"order{index}.xml"
            path.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
            corpus.append(path)
        bad = root / "broken.xml"
        bad.write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-date"], encoding="utf-8"
        )
        corpus.append(bad)

        cache_dir = str(root / "cache")
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, cache_dir=cache_dir,
            schema_label="purchase_order.xsd",
        )
        summary = report["summary"]
        print(f"\nfirst run:  {summary['documents']} documents, "
              f"{summary['valid']} valid, {summary['invalid']} invalid "
              f"({summary['elapsed_ms']}ms, jobs={report['jobs']})")
        for record in report["files"]:
            if not record["valid"]:
                name = record["path"].rsplit("/", 1)[-1]
                print(f"  FAIL {name}: {record['error']}")

        # A re-run answers from the verdict cache — nothing is re-parsed
        # unless the file content (or the schema) changed:
        rerun = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, cache_dir=cache_dir,
        )
        print(f"second run: {rerun['summary']['cached']} of "
              f"{rerun['summary']['documents']} verdicts from cache "
              f"({rerun['summary']['elapsed_ms']}ms)")

        # The report is plain JSON — ship it to CI as an artifact:
        print("\nreport summary as JSON:")
        print(json.dumps(rerun["summary"], indent=2, sort_keys=True))


if __name__ == "__main__":
    main()

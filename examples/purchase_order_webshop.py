#!/usr/bin/env python3
"""A small web-shop backend built on the typed purchase-order binding.

This is the "XML generators … for example generators for XML documents
serving as views of data bases" scenario from the paper's introduction:
orders live in a (toy) database, get rendered to XML views for partners,
and incoming XML orders are ingested — all through the typed layer, so
neither direction can produce or silently accept invalid documents.

Run:  python examples/purchase_order_webshop.py
"""

import datetime
import decimal
from dataclasses import dataclass

from repro import bind, parse_document, serialize
from repro.errors import ReproError, VdomTypeError
from repro.query import Query
from repro.schemas import PURCHASE_ORDER_SCHEMA


@dataclass
class CartLine:
    sku: str
    product: str
    quantity: int
    unit_price: decimal.Decimal


@dataclass
class Customer:
    name: str
    street: str
    city: str
    state: str
    zip_code: str


CATALOG = {
    "872-AA": ("Lawnmower", decimal.Decimal("148.95")),
    "926-AA": ("Baby Monitor", decimal.Decimal("39.98")),
    "455-BX": ("Garden Hose", decimal.Decimal("12.50")),
}


class WebShop:
    """The database-backed generator of purchase-order views."""

    def __init__(self):
        self._binding = bind(PURCHASE_ORDER_SCHEMA)
        self._orders: dict[int, str] = {}  # order id -> serialized XML
        self._next_id = 1
        # Compile the partner-facing queries once; they are checked
        # against the schema here, not when some request hits them.
        self._sku_query = Query(
            self._binding, "purchaseOrder", "items/item"
        )

    # -- outbound: database rows → XML views ------------------------------

    def place_order(
        self, customer: Customer, billing: Customer, cart: list[CartLine]
    ) -> int:
        f = self._binding.factory
        items = f.create_items(
            *[
                f.create_item(
                    f.create_product_name(line.product),
                    f.create_quantity(line.quantity),
                    f.create_us_price(str(line.unit_price)),
                    part_num=line.sku,
                )
                for line in cart
            ]
        )
        order = f.create_purchase_order(
            self._address(f.create_ship_to, customer),
            self._address(f.create_bill_to, billing),
            items,
            order_date=datetime.date(1999, 10, 20),
        )
        order_id = self._next_id
        self._next_id += 1
        # No validation before persisting: the tree is valid or it
        # would not exist.
        self._orders[order_id] = serialize(self._binding.document(order))
        return order_id

    def _address(self, factory_method, who: Customer):
        f = self._binding.factory
        return factory_method(
            f.create_name(who.name),
            f.create_street(who.street),
            f.create_city(who.city),
            f.create_state(who.state),
            f.create_zip(who.zip_code),
        )

    def order_view(self, order_id: int) -> str:
        return self._orders[order_id]

    # -- inbound: partner XML → typed objects → business logic --------------

    def ingest(self, xml_text: str) -> dict:
        """Accept a partner's purchase order; typed or rejected."""
        document = parse_document(xml_text)
        typed = self._binding.from_dom(document.document_element)
        total = decimal.Decimal(0)
        lines = []
        for item in typed.items.item_list:
            quantity = item.quantity.value
            price = item.us_price.value
            total += quantity * price
            lines.append((item.part_num, quantity, price))
        return {
            "ship_to": typed.ship_to.name.content,
            "lines": lines,
            "total": total,
        }


def main() -> None:
    shop = WebShop()
    alice = Customer(
        "Alice Smith", "123 Maple Street", "Mill Valley", "CA", "90952"
    )
    robert = Customer("Robert Smith", "8 Oak Avenue", "Old Town", "PA", "95819")

    cart = [
        CartLine("872-AA", CATALOG["872-AA"][0], 1, CATALOG["872-AA"][1]),
        CartLine("455-BX", CATALOG["455-BX"][0], 3, CATALOG["455-BX"][1]),
    ]

    order_id = shop.place_order(alice, robert, cart)
    print(f"order {order_id} stored; XML view:\n")
    print(shop.order_view(order_id)[:300], "...\n")

    summary = shop.ingest(shop.order_view(order_id))
    print("ingested our own view back:", summary, "\n")

    # A partner sends a corrupt order: quantity out of range.
    corrupt = shop.order_view(order_id).replace(
        "<quantity>3</quantity>", "<quantity>30000</quantity>"
    )
    try:
        shop.ingest(corrupt)
    except VdomTypeError as error:
        print(f"corrupt partner order rejected at ingestion: {error}")

    # And one with a structural problem: items before billTo.
    swapped = shop.order_view(order_id).replace(
        "<billTo", "<placeholder", 1
    )
    try:
        shop.ingest(swapped)
    except ReproError as error:
        print(f"structurally broken order rejected: {error}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Section 5 scenario: a WML directory page for a media
archive, three ways.

* Figure 8  — the Java-Server-Page-style string template (baseline),
  including the "wrong server page" variant that the engine happily
  accepts and that only breaks when a client parses the output;
* Figure 10 — the same page as P-XML templates, statically checked;
* Figure 11 — the generated factory-call code the preprocessor emits.

Run:  python examples/wml_directory.py
"""

from repro import Template, bind, parse_document, serialize, validate
from repro.errors import PxmlStaticError, XmlSyntaxError
from repro.serverpages import ServerPage
from repro.schemas import WML_SCHEMA


class MediaArchive:
    """Stand-in for the paper's media archive object ``mdmo``."""

    TREE = {
        "/workspace/media": ["audio", "video", "images"],
        "/workspace/media/audio": ["lectures", "interviews"],
    }

    def __init__(self, path: str):
        self._path = path

    def get_full_path(self) -> str:
        return self._path

    def get_childs(self) -> list[str]:
        return self.TREE.get(self._path, [])

    def parent(self) -> str:
        head = self._path.rsplit("/", 1)[0]
        return head or "/workspace"


FIG8_PAGE = (
    '<wml><card id="dirs" title="Directories"><p>'
    "<b><%= currentDir %></b><br/>"
    '<select name="directories">'
    '<option value="<%= parentDir %>">..</option>'
    "<% for subDir in subDirs: %>"
    '<option value="<%= currentDir + \'/\' + subDir %>"><%= subDir %></option>'
    "<% end %>"
    "</select><br/>"
    "</p></card></wml>"
)


def fig8_baseline(archive: MediaArchive) -> str:
    """Fig. 8: string templating. Output is *hoped* to be valid WML."""
    return ServerPage(FIG8_PAGE).render(
        currentDir=archive.get_full_path(),
        parentDir=archive.parent(),
        subDirs=archive.get_childs(),
    )


def fig8_wrong(archive: MediaArchive) -> str:
    """The paper's point: this broken page is accepted just the same."""
    broken = FIG8_PAGE.replace("</select>", "<TITLE></select>")
    return ServerPage(broken).render(
        currentDir=archive.get_full_path(),
        parentDir=archive.parent(),
        subDirs=archive.get_childs(),
    )


def fig10_pxml(binding, archive: MediaArchive):
    """Fig. 10: the P-XML program. Every constructor is pre-checked."""
    factory = binding.factory
    option = Template(binding, '<option value="$d$">$label:text$</option>')
    select = factory.create_select(
        option.render(d=archive.parent(), label=".."),
        name="directories",
    )
    current = archive.get_full_path()
    for sub_dir in archive.get_childs():
        select.add(option.render(d=f"{current}/{sub_dir}", label=sub_dir))
    page = Template(
        binding, "<p><b>$currentDir:text$</b><br/>$s:select$<br/></p>"
    )
    body = page.render(currentDir=current, s=select)
    return factory.create_wml(
        factory.create_card(body, id="dirs", title="Directories")
    )


def main() -> None:
    binding = bind(WML_SCHEMA)
    archive = MediaArchive("/workspace/media")

    print("=== Fig. 8: server-page baseline ===")
    output = fig8_baseline(archive)
    print(output)
    errors = validate(parse_document(output), binding.schema)
    print(f"post-hoc validation errors: {len(errors)} (had to check!)\n")

    print("=== Fig. 8, wrong variant: accepted by the engine ===")
    broken = fig8_wrong(archive)
    print(broken[:120] + "...")
    try:
        parse_document(broken)
    except XmlSyntaxError as error:
        print(f"a client parsing this page would explode: {error}\n")

    print("=== Fig. 10: P-XML (statically checked) ===")
    typed = fig10_pxml(binding, archive)
    print(serialize(typed))
    print("no validation call anywhere: the page cannot be invalid\n")

    print("=== the same mistake, P-XML: rejected before running ===")
    try:
        Template(binding, "<select><TITLE>oops</TITLE></select>")
    except PxmlStaticError as error:
        print(f"static error: {error}\n")

    print("=== Fig. 11: what the page template compiles to ===")
    template = Template(
        binding, "<p><b>$currentDir:text$</b><br/>$s:select$<br/></p>"
    )
    print(template.generated_source)


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The sandbox's setuptools predates integrated ``bdist_wheel`` and has no
``wheel`` package, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` via
fallback) work offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Parse → DOM → serialize round-trips (FIG1 infrastructure)."""


from repro.dom import parse_document, serialize
from repro.schemas import PURCHASE_ORDER_DOCUMENT


class TestRoundTrip:
    def test_purchase_order_roundtrip_is_stable(self):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        once = serialize(document)
        twice = serialize(parse_document(once))
        assert once == twice

    def test_text_escaping_roundtrip(self):
        document = parse_document("<a>1 &lt; 2 &amp; 3</a>")
        rendered = serialize(document)
        assert rendered == "<a>1 &lt; 2 &amp; 3</a>"
        assert parse_document(rendered).document_element.text_content == "1 < 2 & 3"

    def test_cdata_preserved(self):
        document = parse_document("<a><![CDATA[x < y]]></a>")
        assert "<![CDATA[x < y]]>" in serialize(document)

    def test_empty_element_notation(self):
        assert serialize(parse_document("<a><b/></a>")) == "<a><b/></a>"

    def test_attributes_roundtrip(self):
        source = '<a x="1" y="a&amp;b"/>'
        assert serialize(parse_document(source)) == source

    def test_comments_and_pis_kept(self):
        source = "<a><!--c--><?pi data?></a>"
        assert serialize(parse_document(source)) == source

    def test_comments_can_be_dropped(self):
        document = parse_document("<a><!--c--></a>", keep_comments=False)
        assert serialize(document) == "<a/>"

    def test_doctype_roundtrip(self):
        source = '<!DOCTYPE a [<!ELEMENT a EMPTY>]>\n<a/>'
        rendered = serialize(parse_document(source))
        assert "<!DOCTYPE a [<!ELEMENT a EMPTY>]>" in rendered

    def test_xml_declaration_emission(self):
        document = parse_document("<a/>")
        assert serialize(document, xml_declaration=True).startswith("<?xml")


class TestPrettyPrinting:
    def test_pretty_indents_element_content(self):
        document = parse_document("<a><b><c/></b></a>")
        pretty = serialize(document, pretty=True)
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>"

    def test_pretty_preserves_mixed_content(self):
        document = parse_document("<p>some <b>bold</b> text</p>")
        pretty = serialize(document, pretty=True)
        assert "some <b>bold</b> text" in pretty

    def test_pretty_custom_indent(self):
        document = parse_document("<a><b/></a>")
        assert serialize(document, pretty=True, indent="\t") == "<a>\n\t<b/>\n</a>"

    def test_pretty_reparses_equal_structure(self):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        pretty = serialize(document, pretty=True)
        reparsed = parse_document(pretty)
        original_names = [
            e.tag_name
            for e in document.get_elements_by_tag_name("*")
        ]
        pretty_names = [
            e.tag_name
            for e in reparsed.get_elements_by_tag_name("*")
        ]
        assert original_names == pretty_names

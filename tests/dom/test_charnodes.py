"""CharacterData node operations."""

import pytest

from repro.errors import DomError
from repro.dom import Document


@pytest.fixture
def doc():
    return Document()


class TestCharacterData:
    def test_length_and_value(self, doc):
        text = doc.create_text_node("hello")
        assert text.length == 5
        assert text.node_value == "hello"

    def test_substring(self, doc):
        text = doc.create_text_node("hello world")
        assert text.substring_data(6, 5) == "world"

    def test_append_insert_delete_replace(self, doc):
        text = doc.create_text_node("ac")
        text.insert_data(1, "b")
        assert text.data == "abc"
        text.append_data("d")
        assert text.data == "abcd"
        text.delete_data(0, 2)
        assert text.data == "cd"
        text.replace_data(0, 1, "X")
        assert text.data == "Xd"

    def test_offset_bounds_checked(self, doc):
        text = doc.create_text_node("ab")
        with pytest.raises(DomError):
            text.insert_data(5, "x")
        with pytest.raises(DomError):
            text.substring_data(-1, 2)


class TestSplitText:
    def test_split_inserts_sibling(self, doc):
        root = doc.create_element("root")
        text = doc.create_text_node("hello world")
        root.append_child(text)
        tail = text.split_text(5)
        assert text.data == "hello"
        assert tail.data == " world"
        assert text.next_sibling is tail

    def test_split_detached_node(self, doc):
        text = doc.create_text_node("ab")
        tail = text.split_text(1)
        assert tail.data == "b"
        assert tail.parent_node is None


class TestCdata:
    def test_cdata_is_text_subclass(self, doc):
        cdata = doc.create_cdata_section("raw < data")
        assert cdata.data == "raw < data"
        # CDATA participates in text_content like ordinary text
        root = doc.create_element("root")
        root.append_child(cdata)
        assert root.text_content == "raw < data"


class TestComment:
    def test_comment_value(self, doc):
        comment = doc.create_comment("note")
        assert comment.node_value == "note"

    def test_comment_not_in_text_content(self, doc):
        root = doc.create_element("root")
        root.append_child(doc.create_comment("hidden"))
        root.append_child(doc.create_text_node("shown"))
        assert root.text_content == "shown"

"""DOM tree structure and mutation semantics."""

import pytest

from repro.errors import DomError, HierarchyRequestError
from repro.dom import Document, NodeType


@pytest.fixture
def doc():
    return Document()


class TestFactoriesAndIdentity:
    def test_create_element(self, doc):
        element = doc.create_element("a")
        assert element.tag_name == "a"
        assert element.node_type is NodeType.ELEMENT
        assert element.owner_document is doc

    def test_document_owner_is_none(self, doc):
        assert doc.owner_document is None

    def test_node_names(self, doc):
        assert doc.node_name == "#document"
        assert doc.create_text_node("x").node_name == "#text"
        assert doc.create_comment("x").node_name == "#comment"
        assert doc.create_cdata_section("x").node_name == "#cdata-section"


class TestInsertion:
    def test_append_and_navigate(self, doc):
        root = doc.create_element("root")
        doc.append_child(root)
        a, b = doc.create_element("a"), doc.create_element("b")
        root.append_child(a)
        root.append_child(b)
        assert root.first_child is a
        assert root.last_child is b
        assert a.next_sibling is b
        assert b.previous_sibling is a
        assert a.parent_node is root

    def test_insert_before(self, doc):
        root = doc.create_element("root")
        a, b = doc.create_element("a"), doc.create_element("b")
        root.append_child(b)
        root.insert_before(a, b)
        assert [child.node_name for child in root.child_nodes] == ["a", "b"]

    def test_insert_before_none_appends(self, doc):
        root = doc.create_element("root")
        a = doc.create_element("a")
        root.insert_before(a, None)
        assert root.last_child is a

    def test_reinsertion_moves_node(self, doc):
        root = doc.create_element("root")
        a, b = doc.create_element("a"), doc.create_element("b")
        root.append_child(a)
        root.append_child(b)
        root.append_child(a)  # move a to the end
        assert [child.node_name for child in root.child_nodes] == ["b", "a"]

    def test_remove_child(self, doc):
        root = doc.create_element("root")
        a = doc.create_element("a")
        root.append_child(a)
        returned = root.remove_child(a)
        assert returned is a
        assert a.parent_node is None
        assert not root.has_child_nodes()

    def test_remove_nonchild_raises(self, doc):
        root = doc.create_element("root")
        with pytest.raises(DomError):
            root.remove_child(doc.create_element("a"))

    def test_replace_child(self, doc):
        root = doc.create_element("root")
        a, b = doc.create_element("a"), doc.create_element("b")
        root.append_child(a)
        old = root.replace_child(b, a)
        assert old is a
        assert root.first_child is b

    def test_document_fragment_splices(self, doc):
        root = doc.create_element("root")
        fragment = doc.create_document_fragment()
        fragment.append_child(doc.create_element("a"))
        fragment.append_child(doc.create_element("b"))
        root.append_child(fragment)
        assert [child.node_name for child in root.child_nodes] == ["a", "b"]
        assert not fragment.has_child_nodes()


class TestHierarchyRules:
    def test_single_root_enforced(self, doc):
        doc.append_child(doc.create_element("a"))
        with pytest.raises(HierarchyRequestError):
            doc.append_child(doc.create_element("b"))

    def test_no_text_directly_in_document(self, doc):
        with pytest.raises(HierarchyRequestError):
            doc.append_child(doc.create_text_node("loose"))

    def test_no_self_containment(self, doc):
        a = doc.create_element("a")
        with pytest.raises(HierarchyRequestError):
            a.append_child(a)

    def test_no_ancestor_cycle(self, doc):
        a, b = doc.create_element("a"), doc.create_element("b")
        a.append_child(b)
        with pytest.raises(HierarchyRequestError):
            b.append_child(a)

    def test_cross_document_insert_rejected(self, doc):
        other = Document()
        foreign = other.create_element("f")
        root = doc.create_element("root")
        doc.append_child(root)
        with pytest.raises(DomError):
            root.append_child(foreign)

    def test_import_node_enables_transfer(self, doc):
        other = Document()
        foreign = other.create_element("f")
        foreign.set_attribute("x", "1")
        foreign.append_child(other.create_text_node("t"))
        imported = doc.import_node(foreign)
        root = doc.create_element("root")
        doc.append_child(root)
        root.append_child(imported)
        assert imported.owner_document is doc
        assert imported.get_attribute("x") == "1"
        assert imported.text_content == "t"


class TestLiveNodeList:
    def test_node_list_is_live(self, doc):
        root = doc.create_element("root")
        children = root.child_nodes
        assert len(children) == 0
        root.append_child(doc.create_element("a"))
        assert len(children) == 1

    def test_item_out_of_range_is_none(self, doc):
        root = doc.create_element("root")
        assert root.child_nodes.item(0) is None
        root.append_child(doc.create_element("a"))
        assert root.child_nodes.item(0).node_name == "a"


class TestCloneAndNormalize:
    def test_shallow_clone_drops_children(self, doc):
        root = doc.create_element("root")
        root.set_attribute("x", "1")
        root.append_child(doc.create_element("a"))
        clone = root.clone_node(deep=False)
        assert clone.get_attribute("x") == "1"
        assert not clone.has_child_nodes()
        assert clone.parent_node is None

    def test_deep_clone_copies_subtree(self, doc):
        root = doc.create_element("root")
        child = doc.create_element("a")
        child.append_child(doc.create_text_node("t"))
        root.append_child(child)
        clone = root.clone_node(deep=True)
        assert clone.text_content == "t"
        assert clone.first_child is not child

    def test_normalize_merges_text(self, doc):
        root = doc.create_element("root")
        root.append_child(doc.create_text_node("a"))
        root.append_child(doc.create_text_node("b"))
        root.append_child(doc.create_text_node(""))
        root.normalize()
        assert len(root.child_nodes) == 1
        assert root.text_content == "ab"

    def test_text_content_spans_descendants(self, doc):
        root = doc.create_element("root")
        a = doc.create_element("a")
        a.append_child(doc.create_text_node("x"))
        root.append_child(a)
        root.append_child(doc.create_text_node("y"))
        assert root.text_content == "xy"

"""Element attribute APIs and NamedNodeMap behaviour."""

import pytest

from repro.errors import DomError, XmlError
from repro.dom import Document


@pytest.fixture
def doc():
    return Document()


class TestAttributeConvenience:
    def test_set_get(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "1")
        assert element.get_attribute("x") == "1"
        assert element.has_attribute("x")

    def test_get_missing_returns_empty_string(self, doc):
        assert doc.create_element("a").get_attribute("x") == ""

    def test_overwrite_keeps_one(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "1")
        element.set_attribute("x", "2")
        assert element.get_attribute("x") == "2"
        assert len(element.attributes) == 1

    def test_remove_is_silent_when_absent(self, doc):
        element = doc.create_element("a")
        element.remove_attribute("x")  # no error

    def test_remove(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "1")
        element.remove_attribute("x")
        assert not element.has_attribute("x")

    def test_illegal_attribute_name(self, doc):
        element = doc.create_element("a")
        with pytest.raises(XmlError):
            element.set_attribute("bad name", "v")


class TestAttrNodes:
    def test_set_attribute_node(self, doc):
        element = doc.create_element("a")
        attr = doc.create_attribute("x", "1")
        displaced = element.set_attribute_node(attr)
        assert displaced is None
        assert element.get_attribute_node("x") is attr
        assert attr.owner_element is element

    def test_displacement_returns_previous(self, doc):
        element = doc.create_element("a")
        first = doc.create_attribute("x", "1")
        second = doc.create_attribute("x", "2")
        element.set_attribute_node(first)
        displaced = element.set_attribute_node(second)
        assert displaced is first
        assert first.owner_element is None

    def test_attr_in_use_elsewhere_rejected(self, doc):
        a, b = doc.create_element("a"), doc.create_element("b")
        attr = doc.create_attribute("x", "1")
        a.set_attribute_node(attr)
        with pytest.raises(DomError):
            b.set_attribute_node(attr)

    def test_remove_attribute_node(self, doc):
        element = doc.create_element("a")
        attr = doc.create_attribute("x", "1")
        element.set_attribute_node(attr)
        removed = element.remove_attribute_node(attr)
        assert removed is attr
        assert not element.has_attribute("x")

    def test_named_node_map_iteration_order(self, doc):
        element = doc.create_element("a")
        for name in ("x", "y", "z"):
            element.set_attribute(name, name.upper())
        assert element.attributes.names() == ["x", "y", "z"]
        assert element.attributes.items() == [
            ("x", "X"), ("y", "Y"), ("z", "Z")
        ]


class TestElementQueries:
    def test_get_elements_by_tag_name(self, doc):
        root = doc.create_element("root")
        doc.append_child(root)
        for __ in range(3):
            root.append_child(doc.create_element("item"))
        nested = doc.create_element("box")
        nested.append_child(doc.create_element("item"))
        root.append_child(nested)
        assert len(root.get_elements_by_tag_name("item")) == 4

    def test_wildcard_matches_all(self, doc):
        root = doc.create_element("root")
        root.append_child(doc.create_element("a"))
        root.append_child(doc.create_element("b"))
        assert len(root.get_elements_by_tag_name("*")) == 2

    def test_document_level_search_includes_root(self, doc):
        root = doc.create_element("item")
        doc.append_child(root)
        root.append_child(doc.create_element("item"))
        assert len(doc.get_elements_by_tag_name("item")) == 2

    def test_child_elements_skips_text(self, doc):
        root = doc.create_element("root")
        root.append_child(doc.create_text_node("t"))
        root.append_child(doc.create_element("a"))
        assert [e.tag_name for e in root.child_elements()] == ["a"]

"""Serializer edge cases beyond the round-trip suite."""

import pytest

from repro.errors import DomError, XmlError
from repro.dom import Document, parse_document, serialize
from repro.dom.document import DocumentType


@pytest.fixture
def doc():
    return Document()


class TestNodeKinds:
    def test_serialize_fragment(self, doc):
        fragment = doc.create_document_fragment()
        fragment.append_child(doc.create_element("a"))
        fragment.append_child(doc.create_element("b"))
        assert serialize(fragment) == "<a/><b/>"

    def test_serialize_bare_text(self, doc):
        assert serialize(doc.create_text_node("a<b")) == "a&lt;b"

    def test_serialize_comment(self, doc):
        assert serialize(doc.create_comment(" note ")) == "<!-- note -->"

    def test_serialize_pi(self, doc):
        pi = doc.create_processing_instruction("target", "data")
        assert serialize(pi) == "<?target data?>"

    def test_attr_not_serializable(self, doc):
        with pytest.raises(DomError):
            serialize(doc.create_attribute("x", "1"))

    def test_doctype_public(self, doc):
        doctype = DocumentType("html", "-//W3C//DTD", "http://dtd", None, doc)
        doc.append_child(doctype)
        doc.append_child(doc.create_element("html"))
        rendered = serialize(doc)
        assert rendered.startswith(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://dtd">'
        )

    def test_doctype_system_only(self, doc):
        doctype = DocumentType("a", None, "file.dtd", None, doc)
        doc.append_child(doctype)
        doc.append_child(doc.create_element("a"))
        assert '<!DOCTYPE a SYSTEM "file.dtd">' in serialize(doc)


class TestPrettyEdges:
    def test_pretty_comments_indented(self):
        document = parse_document("<a><!--c--><b/></a>")
        assert serialize(document, pretty=True) == (
            "<a>\n  <!--c-->\n  <b/>\n</a>"
        )

    def test_pretty_pi_indented(self):
        document = parse_document("<a><?p d?><b/></a>")
        assert serialize(document, pretty=True) == (
            "<a>\n  <?p d?>\n  <b/>\n</a>"
        )

    def test_pretty_root_only(self):
        document = parse_document("<a/>")
        assert serialize(document, pretty=True) == "<a/>"

    def test_pretty_with_declaration(self):
        document = parse_document("<a><b/></a>")
        rendered = serialize(document, pretty=True, xml_declaration=True)
        assert rendered.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        assert "\n<a>" in rendered

    def test_pretty_text_only_element_kept_inline(self):
        document = parse_document("<a><b>text</b></a>")
        assert "<b>text</b>" in serialize(document, pretty=True)


class TestEscapingEdges:
    def test_carriage_return_in_text(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_text_node("x\ry"))
        assert serialize(element) == "<a>x&#13;y</a>"

    def test_tabs_and_newlines_in_attributes(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "a\tb\nc")
        assert serialize(element) == '<a x="a&#9;b&#10;c"/>'

    def test_escaped_attr_roundtrips(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", 'quote " and tab\t!')
        reparsed = parse_document(serialize(element))
        assert reparsed.document_element.get_attribute("x") == (
            'quote " and tab\t!'
        )

    def test_lt_and_quote_in_attribute(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", '<b v="1">')
        assert serialize(element) == '<a x="&lt;b v=&quot;1&quot;&gt;"/>'

    def test_ampersand_in_attribute(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "Smith & Sons")
        assert serialize(element) == '<a x="Smith &amp; Sons"/>'


class TestMarkupGuards:
    def test_cdata_with_embedded_terminator_splits(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_cdata_section("x]]>y"))
        rendered = serialize(element)
        assert rendered == "<a><![CDATA[x]]]]><![CDATA[>y]]></a>"
        reparsed = parse_document(rendered)
        assert reparsed.document_element.text_content == "x]]>y"

    def test_cdata_terminator_at_boundaries(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_cdata_section("]]>"))
        reparsed = parse_document(serialize(element))
        assert reparsed.document_element.text_content == "]]>"

    def test_comment_double_hyphen_rejected(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_comment("bad -- comment"))
        with pytest.raises(XmlError):
            serialize(element)

    def test_comment_double_hyphen_rejected_pretty(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_comment("bad -- comment"))
        with pytest.raises(XmlError):
            serialize(element, pretty=True)


class TestPrettyMixedContent:
    def test_preserve_mixed_keeps_text_untouched(self):
        source = "<p>one <b>two</b> three</p>"
        document = parse_document(source)
        assert serialize(document, pretty=True) == source

    def test_preserve_mixed_subtree_inside_pretty_document(self):
        document = parse_document(
            "<doc><p>one <b>two</b> three</p><q/></doc>"
        )
        assert serialize(document, pretty=True) == (
            "<doc>\n  <p>one <b>two</b> three</p>\n  <q/>\n</doc>"
        )

    def test_preserve_mixed_off_indents_through_text(self):
        document = parse_document("<p>one <b>two</b> three</p>")
        from repro.xml.serializer import IndentPolicy

        pieces: list[str] = []
        from repro.dom.serialize import _write

        _write(document, pieces, IndentPolicy("  ", preserve_mixed=False), 0)
        rendered = "".join(pieces)
        assert "\n" in rendered  # text children get indented too


class TestDeepTrees:
    def test_10000_deep_chain_serializes_iteratively(self, doc):
        # Built bottom-up so each append_child sees a parentless chain.
        depth = 10_000
        node = doc.create_element("leaf")
        node.append_child(doc.create_text_node("x"))
        for _ in range(depth):
            parent = doc.create_element("d")
            parent.append_child(node)
            node = parent
        rendered = serialize(node)
        assert rendered == "<d>" * depth + "<leaf>x</leaf>" + "</d>" * depth

    def test_10000_deep_chain_pretty(self, doc):
        depth = 10_000
        node = doc.create_element("leaf")
        for _ in range(depth):
            parent = doc.create_element("d")
            parent.append_child(node)
            node = parent
        rendered = serialize(node, pretty=True, indent="")
        assert rendered.count("<d>") == depth
        assert rendered.count("</d>") == depth

"""Serializer edge cases beyond the round-trip suite."""

import pytest

from repro.errors import DomError
from repro.dom import Document, parse_document, serialize
from repro.dom.document import DocumentType


@pytest.fixture
def doc():
    return Document()


class TestNodeKinds:
    def test_serialize_fragment(self, doc):
        fragment = doc.create_document_fragment()
        fragment.append_child(doc.create_element("a"))
        fragment.append_child(doc.create_element("b"))
        assert serialize(fragment) == "<a/><b/>"

    def test_serialize_bare_text(self, doc):
        assert serialize(doc.create_text_node("a<b")) == "a&lt;b"

    def test_serialize_comment(self, doc):
        assert serialize(doc.create_comment(" note ")) == "<!-- note -->"

    def test_serialize_pi(self, doc):
        pi = doc.create_processing_instruction("target", "data")
        assert serialize(pi) == "<?target data?>"

    def test_attr_not_serializable(self, doc):
        with pytest.raises(DomError):
            serialize(doc.create_attribute("x", "1"))

    def test_doctype_public(self, doc):
        doctype = DocumentType("html", "-//W3C//DTD", "http://dtd", None, doc)
        doc.append_child(doctype)
        doc.append_child(doc.create_element("html"))
        rendered = serialize(doc)
        assert rendered.startswith(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://dtd">'
        )

    def test_doctype_system_only(self, doc):
        doctype = DocumentType("a", None, "file.dtd", None, doc)
        doc.append_child(doctype)
        doc.append_child(doc.create_element("a"))
        assert '<!DOCTYPE a SYSTEM "file.dtd">' in serialize(doc)


class TestPrettyEdges:
    def test_pretty_comments_indented(self):
        document = parse_document("<a><!--c--><b/></a>")
        assert serialize(document, pretty=True) == (
            "<a>\n  <!--c-->\n  <b/>\n</a>"
        )

    def test_pretty_pi_indented(self):
        document = parse_document("<a><?p d?><b/></a>")
        assert serialize(document, pretty=True) == (
            "<a>\n  <?p d?>\n  <b/>\n</a>"
        )

    def test_pretty_root_only(self):
        document = parse_document("<a/>")
        assert serialize(document, pretty=True) == "<a/>"

    def test_pretty_with_declaration(self):
        document = parse_document("<a><b/></a>")
        rendered = serialize(document, pretty=True, xml_declaration=True)
        assert rendered.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        assert "\n<a>" in rendered

    def test_pretty_text_only_element_kept_inline(self):
        document = parse_document("<a><b>text</b></a>")
        assert "<b>text</b>" in serialize(document, pretty=True)


class TestEscapingEdges:
    def test_carriage_return_in_text(self, doc):
        element = doc.create_element("a")
        element.append_child(doc.create_text_node("x\ry"))
        assert serialize(element) == "<a>x&#13;y</a>"

    def test_tabs_and_newlines_in_attributes(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", "a\tb\nc")
        assert serialize(element) == '<a x="a&#9;b&#10;c"/>'

    def test_escaped_attr_roundtrips(self, doc):
        element = doc.create_element("a")
        element.set_attribute("x", 'quote " and tab\t!')
        reparsed = parse_document(serialize(element))
        assert reparsed.document_element.get_attribute("x") == (
            'quote " and tab\t!'
        )

"""``POST /-/validate``: the table-driven 422 pre-check as an endpoint.

Same raw-socket harness as ``test_server.py``; the endpoint streams the
posted body through the table-driven :class:`StreamingValidator` and
answers in JSON, so the assertions cover the verdicts, the error shapes
(message/line/column/path), and the route's method/config guards.
"""

import asyncio
import json

import pytest

from repro.schemas import PURCHASE_ORDER_DOCUMENT
from repro.serve import RouteTable
from tests.serve.test_server import get, raw_request, running


def _post(port: int, body: bytes, path: str = "/-/validate"):
    payload = (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body
    return raw_request(port, payload)


def _parse(data: bytes):
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body) if body.startswith(b"{") else body


@pytest.fixture
def schema(po_binding):
    return po_binding.schema


class TestValidateEndpoint:
    def test_valid_document(self, schema):
        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                return await _post(
                    server.port, PURCHASE_ORDER_DOCUMENT.encode()
                )

        status, verdict = _parse(asyncio.run(scenario()))
        assert status == 200
        assert verdict == {"valid": True, "errors": []}

    def test_invalid_document_lists_errors(self, schema):
        bad = PURCHASE_ORDER_DOCUMENT.replace(
            "<city>Mill Valley</city>", "<bogus>x</bogus>", 1
        )

        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                return await _post(server.port, bad.encode())

        status, verdict = _parse(asyncio.run(scenario()))
        assert status == 422
        assert verdict["valid"] is False
        first = verdict["errors"][0]
        assert first["kind"] == "validation"
        assert "<bogus>" in first["message"]
        assert first["line"] > 1 and first["column"] >= 1
        assert first["path"] == "/purchaseOrder/shipTo"

    def test_malformed_document_is_syntax_error(self, schema):
        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                return await _post(server.port, b"<a><b></a>")

        status, verdict = _parse(asyncio.run(scenario()))
        assert status == 422
        assert verdict["valid"] is False
        assert [error["kind"] for error in verdict["errors"]] == ["syntax"]
        assert "does not match" in verdict["errors"][0]["message"]

    def test_get_is_method_not_allowed(self, schema):
        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                return await get(server.port, "/-/validate")

        status, headers, _body = asyncio.run(scenario())
        assert status == 405
        assert headers["allow"] == "POST"

    def test_without_schema_is_not_found(self):
        async def scenario():
            async with running(RouteTable()) as server:
                return await _post(server.port, b"<a/>")

        status, body = _parse(asyncio.run(scenario()))
        assert status == 404
        assert b"no schema" in body

    def test_non_utf8_body_is_bad_request(self, schema):
        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                return await _post(server.port, b"<a>\xff\xfe</a>")

        status, body = _parse(asyncio.run(scenario()))
        assert status == 400

    def test_counted_in_stats(self, schema):
        async def scenario():
            async with running(RouteTable(), schema=schema) as server:
                await _post(server.port, PURCHASE_ORDER_DOCUMENT.encode())
                status, _headers, body = await get(server.port, "/-/stats")
                assert status == 200
                return json.loads(body)

        stats = asyncio.run(scenario())["server"]
        assert stats["validated"] == 1
        assert stats["responses"]["200"] >= 1


class TestPooledEndpoint:
    """``--validate-pool``: the same endpoint, fanned out to workers."""

    @pytest.fixture
    def pool(self):
        from repro.ingest import ValidationPool
        from repro.schemas import PURCHASE_ORDER_SCHEMA

        with ValidationPool(PURCHASE_ORDER_SCHEMA, 1) as pool:
            yield pool

    def test_pooled_verdicts_match_inline(self, schema, pool):
        bad = PURCHASE_ORDER_DOCUMENT.replace(
            "<city>Mill Valley</city>", "<bogus>x</bogus>", 1
        )

        async def scenario(validate_pool):
            async with running(
                RouteTable(), schema=schema, validate_pool=validate_pool
            ) as server:
                return [
                    await _post(server.port, body.encode())
                    for body in (
                        PURCHASE_ORDER_DOCUMENT, bad, "<a><b></a>"
                    )
                ]

        inline = [_parse(data) for data in asyncio.run(scenario(None))]
        pooled = [_parse(data) for data in asyncio.run(scenario(pool))]
        # Status AND verdict JSON byte-identical to the inline path.
        assert pooled == inline
        assert [status for status, _ in pooled] == [200, 422, 422]

    def test_pool_activity_lands_in_stats(self, schema, pool):
        async def scenario():
            async with running(
                RouteTable(), schema=schema, validate_pool=pool
            ) as server:
                await _post(server.port, PURCHASE_ORDER_DOCUMENT.encode())
                _status, _headers, body = await get(server.port, "/-/stats")
                return json.loads(body)

        stats = asyncio.run(scenario())["server"]
        assert stats["validated"] == 1
        assert stats["pool_validated"] == 1
        assert stats["validate_pool"]["texts"] == 1
        assert stats["validate_pool"]["completed"] == 1
        assert stats["validate_pool"]["live_workers"] == 1

    def test_dead_pool_answers_503_not_crash(self, schema):
        from repro.ingest import ValidationPool
        from repro.schemas import PURCHASE_ORDER_SCHEMA

        pool = ValidationPool(PURCHASE_ORDER_SCHEMA, 1)
        pool.close()

        async def scenario():
            async with running(
                RouteTable(), schema=schema, validate_pool=pool
            ) as server:
                first = await _post(
                    server.port, PURCHASE_ORDER_DOCUMENT.encode()
                )
                # The server keeps serving after the pool failure.
                status, _headers, _body = await get(server.port, "/-/stats")
                return first, status

        first, stats_status = asyncio.run(scenario())
        status, body = _parse(first)
        assert status == 503
        assert b"validation pool unavailable" in body
        assert stats_status == 200

    def test_get_still_method_not_allowed_with_pool(self, schema, pool):
        async def scenario():
            async with running(
                RouteTable(), schema=schema, validate_pool=pool
            ) as server:
                return await get(server.port, "/-/validate")

        status, headers, _body = asyncio.run(scenario())
        assert status == 405
        assert headers["allow"] == "POST"

"""Route table and the directory compiler."""

import pytest

from repro.errors import ReproError, VdomTypeError
from repro.cache import ReproCache
from repro.pxml import Template
from repro.serve import Route, RouteTable, build_routes
from repro.serverpages import ServerPage

SHIP_TO = """\
<shipTo country="US">
  <name>$name$</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""


@pytest.fixture
def template(po_binding):
    return Template(po_binding, SHIP_TO)


class TestRoute:
    def test_exactly_one_of_template_or_page(self, template):
        with pytest.raises(ValueError):
            Route("/x")
        with pytest.raises(ValueError):
            Route("/x", template=template, page=ServerPage("hi"))

    def test_template_route_is_validated(self, template):
        route = Route("/ship_to", template=template)
        assert route.validated
        assert route.kind == "template"

    def test_page_route_is_not(self):
        route = Route("/legacy", page=ServerPage("<%= who %>"))
        assert not route.validated

    def test_render_fills_holes_from_params(self, template):
        route = Route("/ship_to", template=template)
        text = route.render({"name": "Alice"})
        assert "<name>Alice</name>" in text
        assert text == template.render_text(name="Alice")

    def test_unknown_params_are_ignored(self, template):
        # Query noise ("?utm_source=...") must not break a template.
        route = Route("/ship_to", template=template)
        assert route.render({"name": "Alice", "utm_source": "spam"})

    def test_invalid_hole_value_raises(self, po_binding):
        route = Route(
            "/item", template=Template(po_binding, "<quantity>$q$</quantity>")
        )
        with pytest.raises(VdomTypeError):
            route.render({"q": "100"})

    def test_page_route_renders_with_full_params(self):
        route = Route("/legacy", page=ServerPage("<b><%= who %></b>"))
        assert route.render({"who": "x"}) == "<b>x</b>"

    def test_default_name_from_path(self, template):
        assert Route("/ship_to", template=template).name == "ship_to"
        assert Route("/", template=template).name == "index"


class TestRouteTable:
    def test_add_and_resolve(self, template):
        table = RouteTable()
        table.add_template("/a", template)
        assert table.resolve("/a").path == "/a"
        assert table.resolve("/missing") is None
        assert len(table) == 1

    def test_duplicate_path_rejected(self, template):
        table = RouteTable()
        table.add_template("/a", template)
        with pytest.raises(ReproError, match="duplicate route"):
            table.add_template("/a", template)

    def test_paths_sorted(self, template):
        table = RouteTable()
        table.add_template("/b", template)
        table.add_template("/a", template)
        assert table.paths() == ["/a", "/b"]


class TestBuildRoutes:
    @pytest.fixture
    def site(self, tmp_path):
        (tmp_path / "ship_to.pxml").write_text(SHIP_TO)
        (tmp_path / "index.pxml").write_text("<comment>hi</comment>")
        (tmp_path / "legacy.page").write_text("<b><%= who %></b>")
        (tmp_path / "README.txt").write_text("not a page")
        return tmp_path

    def test_compiles_directory(self, po_binding, site):
        table = build_routes(po_binding, site)
        assert table.paths() == ["/", "/index", "/legacy", "/ship_to"]
        assert table.resolve("/ship_to").validated
        assert not table.resolve("/legacy").validated

    def test_index_claims_root(self, po_binding, site):
        table = build_routes(po_binding, site)
        assert table.resolve("/").render({}) == "<comment>hi</comment>"

    def test_empty_directory_refused(self, po_binding, tmp_path):
        with pytest.raises(ReproError, match="no page sources"):
            build_routes(po_binding, tmp_path)

    def test_broken_template_aborts_the_build(self, po_binding, site):
        (site / "broken.pxml").write_text("<notInSchema>$x$</notInSchema>")
        with pytest.raises(ReproError):
            build_routes(po_binding, site)

    def test_cached_build_matches_fresh_build(self, po_binding, site, tmp_path):
        cache = ReproCache.persistent(str(tmp_path / "cache"))
        fresh = build_routes(po_binding, site)
        cold = build_routes(po_binding, site, cache=cache)
        warm = build_routes(po_binding, site, cache=cache)
        for path in fresh.paths():
            params = {"name": "A", "who": "A"}
            assert (
                fresh.resolve(path).render(params)
                == cold.resolve(path).render(params)
                == warm.resolve(path).render(params)
            )

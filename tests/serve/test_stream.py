"""Chunked segment streaming, unit and end-to-end.

The invariant: for every route, the de-chunked streamed body is
byte-identical to the buffered body and to ``render_text`` called
directly — streaming changes the framing, never the payload — and
every error path (missing hole, invalid hole) still arrives as a
complete buffered 4xx with zero page bytes in front of it.
"""

import asyncio
import contextlib
import os

import pytest

from repro.core import bind
from repro.pxml import Template
from repro.serve import ReproServer, RouteTable, build_routes
from repro.serve.http import LAST_CHUNK, encode_chunk, start_chunked_response
from repro.serverpages import ServerPage

SITE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "site"
)

#: one known-good query per examples/site route (index has no holes)
SITE_REQUESTS = {
    "/": "",
    "/index": "",
    "/ship_to": "name=Alice%20Smith",
    "/item": "q=7",
    "/legacy": "who=Bob",
}


@pytest.fixture(scope="module")
def site_binding():
    with open(os.path.join(SITE_DIR, "purchase_order.xsd")) as handle:
        return bind(handle.read())


@pytest.fixture(scope="module")
def site_routes(site_binding):
    return build_routes(site_binding, SITE_DIR)


@contextlib.asynccontextmanager
async def running(routes, **options):
    options.setdefault("request_timeout", 5.0)
    server = ReproServer(routes, port=0, **options)
    await server.start()
    try:
        yield server
    finally:
        server.request_shutdown()
        await server.drain()


async def raw(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionError, OSError):
        await writer.wait_closed()
    return data


def split_head(data: bytes) -> tuple[int, dict, bytes]:
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.lower()] = value.strip()
    return status, headers, rest


def dechunk(raw_body: bytes) -> bytes:
    """Decode a chunked transfer coding body back to plain bytes."""
    out = []
    view = raw_body
    while True:
        size_line, _, view = view.partition(b"\r\n")
        size = int(size_line.split(b";")[0], 16)
        if size == 0:
            break
        out.append(view[:size])
        assert view[size : size + 2] == b"\r\n", "chunk not CRLF-terminated"
        view = view[size + 2 :]
    return b"".join(out)


def target(path: str) -> bytes:
    query = SITE_REQUESTS[path]
    suffix = f"?{query}" if query else ""
    return (
        f"GET {path}{suffix} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    ).encode()


class TestChunkHelpers:
    def test_encode_chunk_frames_size_and_data(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"x" * 16) == b"10\r\n" + b"x" * 16 + b"\r\n"
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_start_chunked_head_has_no_content_length(self):
        head = start_chunked_response(200, "application/xml")
        assert b"Transfer-Encoding: chunked\r\n" in head
        assert b"Content-Length" not in head
        assert head.endswith(b"\r\n\r\n")

    def test_dechunk_roundtrip(self):
        body = (
            encode_chunk(b"abc") + encode_chunk(b"defgh") + LAST_CHUNK
        )
        assert dechunk(body) == b"abcdefgh"


class TestStreamingParity:
    @pytest.mark.parametrize("path", sorted(SITE_REQUESTS))
    def test_every_site_route_streams_byte_identically(
        self, site_routes, path
    ):
        """De-chunked streamed body == buffered body on each route."""

        async def scenario():
            async with running(
                site_routes, stream=True, cache_entries=0
            ) as streaming:
                streamed = await raw(streaming.port, target(path))
            async with running(
                site_routes, stream=False, cache_entries=0
            ) as buffered:
                plain = await raw(buffered.port, target(path))
            return streamed, plain

        streamed, plain = asyncio.run(scenario())
        streamed_status, streamed_headers, streamed_rest = split_head(streamed)
        plain_status, _, plain_body = split_head(plain)
        assert streamed_status == plain_status == 200
        route = site_routes.resolve(path)
        if route.kind == "template":
            assert streamed_headers.get("transfer-encoding") == "chunked"
            assert "content-length" not in streamed_headers
            body = dechunk(streamed_rest)
        else:
            # Server pages have no segment program: buffered fallback.
            assert "transfer-encoding" not in streamed_headers
            body = streamed_rest
        assert body == plain_body

    def test_streamed_matches_direct_render_text(self, site_routes):
        async def scenario():
            async with running(
                site_routes, stream=True, cache_entries=0
            ) as server:
                return await raw(server.port, target("/ship_to"))

        data = asyncio.run(scenario())
        _, _, rest = split_head(data)
        route = site_routes.resolve("/ship_to")
        direct = route._template.render_text(name="Alice Smith")
        assert dechunk(rest) == direct.encode("utf-8")

    def test_large_bodies_split_into_multiple_chunks(self, po_binding):
        # ~40 items of static markup around one hole: enough bytes to
        # cross the coalescing threshold more than once.
        items = "".join(
            f'<item partNum="123-AB"><productName>{"x" * 900}</productName>'
            "<quantity>1</quantity><USPrice>9.99</USPrice></item>"
            for _ in range(40)
        )
        source = f"<items>{items}<item partNum=\"$p$\"><productName>Rake</productName><quantity>2</quantity><USPrice>1.50</USPrice></item></items>"
        table = RouteTable()
        table.add_template("/big", Template(po_binding, source))

        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                return await raw(
                    server.port,
                    b"GET /big?p=999-ZZ HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )

        data = asyncio.run(scenario())
        _, headers, rest = split_head(data)
        assert headers["transfer-encoding"] == "chunked"
        chunk_count = 0
        view = rest
        while True:
            size_line, _, view = view.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            chunk_count += 1
            view = view[size + 2 :]
        assert chunk_count > 1
        direct = table.resolve("/big")._template.render_text(p="999-ZZ")
        assert dechunk(rest) == direct.encode("utf-8")


class TestStreamingSemantics:
    @pytest.fixture
    def table(self, po_binding):
        table = RouteTable()
        table.add_template(
            "/item", Template(po_binding, "<quantity>$q$</quantity>")
        )
        table.add_page("/legacy", ServerPage("<b><%= who %></b>"))
        return table

    def test_invalid_hole_is_a_complete_buffered_422(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                return await raw(
                    server.port,
                    b"GET /item?q=100 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )

        data = asyncio.run(scenario())
        status, headers, body = split_head(data)
        assert status == 422
        assert "transfer-encoding" not in headers
        assert int(headers["content-length"]) == len(body)
        assert b"maxExclusive" in body
        assert not data.startswith(b"HTTP/1.1 200")  # no partial page

    def test_missing_hole_is_a_complete_buffered_400(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                return await raw(
                    server.port,
                    b"GET /item HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )

        status, headers, _ = split_head(asyncio.run(scenario()))
        assert status == 400
        assert "transfer-encoding" not in headers

    def test_head_requests_never_stream(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                return await raw(
                    server.port,
                    b"HEAD /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )

        status, headers, body = split_head(asyncio.run(scenario()))
        assert status == 200
        assert "transfer-encoding" not in headers
        assert "content-length" in headers
        assert body == b""

    def test_http10_clients_get_buffered_responses(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                return await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.0\r\nHost: t\r\n\r\n",
                )

        status, headers, _ = split_head(asyncio.run(scenario()))
        assert status == 200
        assert "transfer-encoding" not in headers
        assert "content-length" in headers

    def test_streamed_responses_feed_the_cache(self, table):
        async def scenario():
            async with running(table, stream=True) as server:
                first = await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                second = await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                return first, second, server.cache.snapshot()

        first, second, snapshot = asyncio.run(scenario())
        assert snapshot["hits"] == 1
        # The hit replays stored bytes buffered; parity must hold.
        _, first_headers, first_rest = split_head(first)
        _, second_headers, second_body = split_head(second)
        assert first_headers["transfer-encoding"] == "chunked"
        assert "transfer-encoding" not in second_headers
        assert dechunk(first_rest) == second_body
        assert first_headers["etag"] == second_headers["etag"]

    def test_streamed_conditional_get_still_304s(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                first = await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                _, headers, _ = split_head(first)
                etag = headers["etag"].encode()
                second = await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"If-None-Match: " + etag + b"\r\n"
                    b"Connection: close\r\n\r\n",
                )
                return second

        status, headers, body = split_head(asyncio.run(scenario()))
        assert status == 304
        assert body == b""
        assert "transfer-encoding" not in headers

    def test_keep_alive_survives_a_streamed_response(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                statuses = []
                for _ in range(2):
                    writer.write(
                        b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    await writer.drain()
                    line = await reader.readline()
                    statuses.append(line.decode().split(" ")[1])
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert b"chunked" in line + head
                    # Consume the chunked body through the last chunk.
                    while True:
                        size_line = await reader.readline()
                        size = int(size_line.strip(), 16)
                        await reader.readexactly(size + 2)
                        if size == 0:
                            break
                writer.close()
                return statuses, server.stats["connections"]

        statuses, connections = asyncio.run(scenario())
        assert statuses == ["200", "200"]
        assert connections == 1

    def test_streamed_count_in_stats(self, table):
        async def scenario():
            async with running(table, stream=True, cache_entries=0) as server:
                await raw(
                    server.port,
                    b"GET /item?q=7 HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                return server.stats["streamed"]

        assert asyncio.run(scenario()) == 1

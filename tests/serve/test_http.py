"""The HTTP/1.1 message layer: strict parsing, exact framing."""

import pytest

from repro.errors import ReproError
from repro.serve.http import (
    HttpError,
    build_response,
    error_response,
    parse_request,
)


def _parse(text: str):
    return parse_request(text.encode())


class TestParseRequest:
    def test_basic_get(self):
        request = _parse("GET /page HTTP/1.1\r\nHost: localhost")
        assert request.method == "GET"
        assert request.path == "/page"
        assert request.query == {}
        assert request.version == "HTTP/1.1"
        assert request.headers["host"] == "localhost"

    def test_query_string_decodes(self):
        request = _parse("GET /ship_to?name=Alice%20Smith&x=&y=1 HTTP/1.1")
        assert request.path == "/ship_to"
        assert request.query == {"name": "Alice Smith", "x": "", "y": "1"}

    def test_percent_encoded_path(self):
        assert _parse("GET /a%20b HTTP/1.1").path == "/a b"

    def test_header_names_lowercase_values_stripped(self):
        request = _parse("GET / HTTP/1.1\r\nX-ThInG:   padded value  ")
        assert request.headers["x-thing"] == "padded value"

    def test_http_10_accepted(self):
        assert _parse("GET / HTTP/1.0").version == "HTTP/1.0"

    @pytest.mark.parametrize(
        "head",
        [
            "GET /",  # two-part request line
            "GET / HTTP/1.1 extra",  # four-part
            "get / HTTP/1.1",  # lowercase method
            "G3T / HTTP/1.1",  # non-alpha method
            "GET / HTTP/2",  # unsupported version
            "GET http://example.com/ HTTP/1.1",  # absolute-form target
            "GET / HTTP/1.1\r\nno-colon-here",  # header without ':'
            "GET / HTTP/1.1\r\n Name: leading-space",  # padded name
        ],
    )
    def test_malformed_heads_raise_400(self, head):
        with pytest.raises(HttpError) as info:
            _parse(head)
        assert info.value.status == 400

    def test_non_ascii_head_raises_400(self):
        with pytest.raises(HttpError) as info:
            parse_request("GET /café HTTP/1.1".encode("utf-8"))
        assert info.value.status == 400

    def test_http_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            _parse("GET /")


class TestContentLength:
    def test_absent_means_zero(self):
        assert _parse("GET / HTTP/1.1").content_length == 0

    def test_parsed(self):
        request = _parse("POST / HTTP/1.1\r\nContent-Length: 42")
        assert request.content_length == 42

    @pytest.mark.parametrize("value", ["nan", "-1", "1.5", ""])
    def test_malformed_raises_400(self, value):
        request = _parse(f"POST / HTTP/1.1\r\nContent-Length: {value}")
        with pytest.raises(HttpError) as info:
            request.content_length
        assert info.value.status == 400


class TestKeepAlive:
    @pytest.mark.parametrize(
        ("head", "expected"),
        [
            ("GET / HTTP/1.1", True),  # 1.1 defaults on
            ("GET / HTTP/1.1\r\nConnection: close", False),
            ("GET / HTTP/1.1\r\nConnection: Close", False),
            ("GET / HTTP/1.0", False),  # 1.0 defaults off
            ("GET / HTTP/1.0\r\nConnection: keep-alive", True),
        ],
    )
    def test_matrix(self, head, expected):
        assert _parse(head).wants_keep_alive() is expected


class TestBuildResponse:
    def test_framing(self):
        response = build_response(200, b"hello", "text/plain")
        head, _, body = response.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert b"Content-Length: 5" in lines
        assert b"Content-Type: text/plain" in lines
        assert b"Connection: keep-alive" in lines
        assert body == b"hello"

    def test_head_only_keeps_content_length_drops_body(self):
        response = build_response(200, b"hello", head_only=True)
        assert b"Content-Length: 5" in response
        assert not response.endswith(b"hello")
        assert response.endswith(b"\r\n\r\n")

    def test_extra_headers(self):
        response = build_response(
            405, b"", extra_headers=(("Allow", "GET, HEAD"),)
        )
        assert b"Allow: GET, HEAD\r\n" in response

    def test_error_response_closes_by_default(self):
        response = error_response(400, "bad")
        assert b"Connection: close" in response
        assert b"400 Bad Request: bad\n" in response


class TestValidatorsAndDate:
    def test_every_builder_emits_a_date_header(self):
        from repro.serve.http import (
            not_modified_response,
            start_chunked_response,
        )

        for response in (
            build_response(200, b"x"),
            error_response(400, "bad"),
            not_modified_response('"e"'),
            start_chunked_response(200),
        ):
            assert b"\r\nDate: " in response
            assert response.split(b"\r\nDate: ")[1].split(b"\r\n")[0].endswith(
                b" GMT"
            )

    def test_http_date_memoizes_within_a_second(self):
        from repro.serve import http as http_module

        first = http_module.http_date()
        assert http_module.http_date() is first  # same object: memo hit

    def test_not_modified_has_no_body_and_no_content_length(self):
        from repro.serve.http import not_modified_response

        response = not_modified_response('"abc"', keep_alive=True)
        assert response.startswith(b"HTTP/1.1 304 Not Modified\r\n")
        assert b"Content-Length" not in response
        assert b'ETag: "abc"\r\n' in response
        assert response.endswith(b"\r\n\r\n")

"""End-to-end: real sockets against a running :class:`ReproServer`.

No async test framework — each test drives one ``asyncio.run`` with the
server and a raw-socket client inside, which keeps the loop lifetime
explicit and the suite dependency-free.
"""

import asyncio
import contextlib
import json

import pytest

from repro import obs
from repro.pxml import Template
from repro.serve import ReproServer, RouteTable
from repro.serverpages import ServerPage

SHIP_TO = """\
<shipTo country="US">
  <name>$name$</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""


@pytest.fixture
def routes(po_binding):
    table = RouteTable()
    table.add_template("/ship_to", Template(po_binding, SHIP_TO))
    table.add_template(
        "/item", Template(po_binding, "<quantity>$q$</quantity>")
    )
    table.add_page("/legacy", ServerPage("<b><%= who %></b>"))
    table.add_page("/crash", ServerPage("<% boom = 1 // 0 %>"))
    return table


@contextlib.asynccontextmanager
async def running(routes, **options):
    options.setdefault("request_timeout", 5.0)
    server = ReproServer(routes, port=0, **options)
    await server.start()
    try:
        yield server
    finally:
        server.request_shutdown()
        await server.drain()


async def raw_request(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionError, OSError):
        await writer.wait_closed()
    return data


async def get(port: int, target: str, method: str = "GET") -> tuple[int, dict, bytes]:
    data = await raw_request(
        port,
        f"{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode(),
    )
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.lower()] = value.strip()
    return status, headers, body


class TestServing:
    def test_response_bytes_match_direct_render_text(self, routes, po_binding):
        template = Template(po_binding, SHIP_TO)

        async def scenario():
            async with running(routes) as server:
                return await get(server.port, "/ship_to?name=Alice%20Smith")

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/xml; charset=utf-8"
        assert body == template.render_text(name="Alice Smith").encode()
        assert int(headers["content-length"]) == len(body)

    def test_head_has_length_but_no_body(self, routes):
        async def scenario():
            async with running(routes) as server:
                return await get(
                    server.port, "/ship_to?name=A", method="HEAD"
                )

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert int(headers["content-length"]) > 0
        assert body == b""

    def test_status_mapping(self, routes):
        async def scenario():
            async with running(routes) as server:
                port = server.port
                return {
                    "missing-hole": await get(port, "/ship_to"),
                    "invalid-hole": await get(port, "/item?q=100"),
                    "no-route": await get(port, "/nope"),
                    "bad-method": await get(port, "/ship_to", method="PUT"),
                    "page-bug": await get(port, "/crash"),
                    "noise-ok": await get(port, "/item?q=3&utm=x"),
                }

        results = asyncio.run(scenario())
        assert results["missing-hole"][0] == 400
        assert results["invalid-hole"][0] == 422
        assert b"maxExclusive" in results["invalid-hole"][2]
        assert results["no-route"][0] == 404
        assert results["bad-method"][0] == 405
        assert results["bad-method"][1]["allow"] == "GET, HEAD"
        assert results["page-bug"][0] == 500
        assert b"ZeroDivisionError" not in results["page-bug"][2]
        assert results["noise-ok"][0] == 200

    def test_malformed_request_line_gets_400(self, routes):
        async def scenario():
            async with running(routes) as server:
                return await raw_request(server.port, b"NONSENSE\r\n\r\n")

        assert b"400 Bad Request" in asyncio.run(scenario())

    def test_keep_alive_serves_sequential_requests(self, routes):
        async def scenario():
            async with running(routes) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                statuses = []
                for _ in range(3):
                    writer.write(
                        b"GET /item?q=1 HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    await writer.drain()
                    line = await reader.readline()
                    statuses.append(line.decode().split(" ")[1])
                    # Swallow the rest of this response before reusing.
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = int(
                        dict(
                            tuple(part.strip() for part in h.split(":", 1))
                            for h in head.decode().lower().split("\r\n")
                            if ":" in h
                        )["content-length"]
                    )
                    await reader.readexactly(length)
                writer.close()
                connections = server.stats["connections"]
                return statuses, connections

        statuses, connections = asyncio.run(scenario())
        assert statuses == ["200", "200", "200"]
        assert connections == 1  # all three rode one connection


class TestOperations:
    def test_stats_endpoint(self, routes):
        async def scenario():
            async with running(routes) as server:
                await get(server.port, "/item?q=1")
                await get(server.port, "/nope")
                status, _, body = await get(server.port, "/-/stats")
                return status, json.loads(body)

        status, snapshot = asyncio.run(scenario())
        assert status == 200
        stats = snapshot["server"]
        assert stats["requests"] == 3  # two pages + the stats scrape
        assert stats["responses"]["200"] == 2
        assert stats["responses"]["404"] == 1
        assert "/item" in stats["routes"]

    def test_request_counters_flow_into_obs(self, routes):
        obs.enable(reset=True)
        try:

            async def scenario():
                async with running(routes) as server:
                    await get(server.port, "/item?q=1")
                    await get(server.port, "/legacy?who=x")
                    await get(server.port, "/nope")
                    _, _, body = await get(server.port, "/-/stats")
                    return json.loads(body)

            snapshot = asyncio.run(scenario())
        finally:
            obs.disable()
        counters = snapshot["obs"]["counters"]
        assert counters["serve.request{route=item,status=200}"] == 1
        assert counters["serve.fallback{reason=serverpage,route=legacy}"] == 1
        assert counters["serve.fallback{reason=no-route,route=-}"] == 1

    def test_health_endpoint(self, routes):
        async def scenario():
            async with running(routes) as server:
                return await get(server.port, "/-/health")

        status, _, body = asyncio.run(scenario())
        assert (status, body) == (200, b"ok\n")

    def test_slow_request_head_gets_408(self, routes):
        async def scenario():
            async with running(routes, request_timeout=0.2) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /item?q=1 HTTP/1.1\r\n")  # never finishes
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), 5.0)
                writer.close()
                return data

        data = asyncio.run(scenario())
        assert b"408 Request Timeout" in data

    def test_connection_cap_queues_not_refuses(self, routes):
        async def scenario():
            async with running(routes, max_connections=1) as server:
                port = server.port
                # First connection takes the only slot and holds it open.
                reader1, writer1 = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer1.write(b"GET /item?q=1 HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer1.drain()
                await reader1.readuntil(b"\r\n\r\n")
                # Second connection must wait, not error out.
                second = asyncio.ensure_future(
                    raw_request(
                        port,
                        b"GET /item?q=2 HTTP/1.1\r\nHost: t\r\n"
                        b"Connection: close\r\n\r\n",
                    )
                )
                await asyncio.sleep(0.1)
                assert not second.done()  # still queued behind the cap
                writer1.close()  # free the slot...
                data = await asyncio.wait_for(second, 5.0)
                return data, server.stats["peak_active"]

        data, peak = asyncio.run(scenario())
        assert b"200 OK" in data
        assert peak == 1  # the cap held: never two active at once

    def test_drain_finishes_inflight_then_refuses_new(self, routes):
        async def scenario():
            server = ReproServer(routes, port=0, request_timeout=5.0)
            await server.start()
            port = server.port
            status, _, _ = await get(port, "/item?q=1")
            server.request_shutdown()
            assert server._shutdown_requested.is_set()
            await server.drain()
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            return status, server.stats["draining"]

        status, draining = asyncio.run(scenario())
        assert status == 200
        assert draining is True

"""Response caching and conditional GETs, unit and end-to-end.

The contract under test: a cache hit replays byte-identical 200s with
the same strong ETag; ``If-None-Match`` turns any match into a bodiless
304; query noise neither fragments keys nor changes bodies; errors are
never stored; and a route-table rebuild empties the cache explicitly.
"""

import asyncio
import contextlib
import json

import pytest

from repro import obs
from repro.pxml import Template
from repro.serve import (
    ReproServer,
    ResponseCache,
    RouteTable,
    etag_matches,
    make_etag,
)
from repro.serve.routes import Route
from repro.serverpages import ServerPage

SHIP_TO = """\
<shipTo country="US">
  <name>$name$</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""


@pytest.fixture
def routes(po_binding):
    table = RouteTable()
    table.add_template("/ship_to", Template(po_binding, SHIP_TO))
    table.add_template(
        "/item", Template(po_binding, "<quantity>$q$</quantity>")
    )
    table.add_page("/legacy", ServerPage("<b><%= who %></b>"))
    return table


@contextlib.asynccontextmanager
async def running(routes, **options):
    options.setdefault("request_timeout", 5.0)
    server = ReproServer(routes, port=0, **options)
    await server.start()
    try:
        yield server
    finally:
        server.request_shutdown()
        await server.drain()


async def request(
    port: int,
    target: str,
    method: str = "GET",
    headers: tuple[tuple[str, str], ...] = (),
) -> tuple[int, dict, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    lines = [f"{method} {target} HTTP/1.1", "Host: t", "Connection: close"]
    lines += [f"{name}: {value}" for name, value in headers]
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionError, OSError):
        await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    head_lines = head.decode().split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    parsed = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.lower()] = value.strip()
    return status, parsed, body


class TestResponseCacheUnit:
    def test_miss_then_store_then_hit(self):
        cache = ResponseCache(4)
        assert cache.get("k") is None
        cache.put("k", b"body", '"e"', "text/plain")
        entry = cache.get("k")
        assert (entry.body, entry.etag) == (b"body", '"e"')
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_lru_evicts_least_recently_used(self):
        cache = ResponseCache(2)
        cache.put("a", b"1", '"a"', "t")
        cache.put("b", b"2", '"b"', "t")
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", b"3", '"c"', "t")
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_restore_of_existing_key_does_not_evict(self):
        cache = ResponseCache(2)
        cache.put("a", b"1", '"a"', "t")
        cache.put("b", b"2", '"b"', "t")
        cache.put("a", b"1x", '"a2"', "t")
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a").body == b"1x"

    def test_clear_counts_invalidations(self):
        cache = ResponseCache(4)
        cache.put("a", b"1", '"a"', "t")
        cache.put("b", b"2", '"b"', "t")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(0)


class TestEtagMatching:
    ETAG = '"abc123"'

    @pytest.mark.parametrize(
        "header, expected",
        [
            ('"abc123"', True),  # fresh: exact match
            ('"stale"', False),  # stale: no match
            ('"stale", "abc123"', True),  # multiple values, one fresh
            ('"one", "two", "three"', False),  # multiple values, all stale
            ("*", True),  # wildcard matches anything
            ('W/"abc123"', True),  # weak comparison strips W/
            ("", False),  # empty header value
        ],
    )
    def test_matrix(self, header, expected):
        assert etag_matches(header, self.ETAG) is expected

    def test_make_etag_is_strong_and_content_addressed(self):
        first = make_etag(b"same bytes")
        assert first == make_etag(b"same bytes")
        assert first != make_etag(b"other bytes")
        assert first.startswith('"') and first.endswith('"')
        assert not first.startswith('W/"')


class TestConditionalGets:
    def test_fresh_etag_gets_304_without_body(self, routes):
        async def scenario():
            async with running(routes) as server:
                _, headers, body = await request(
                    server.port, "/ship_to?name=A"
                )
                etag = headers["etag"]
                status2, headers2, body2 = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", etag),),
                )
                return body, etag, status2, headers2, body2

        body, etag, status2, headers2, body2 = asyncio.run(scenario())
        assert status2 == 304
        assert body2 == b""
        assert headers2["etag"] == etag
        assert "content-length" not in headers2
        assert "date" in headers2

    def test_stale_etag_gets_full_200(self, routes):
        async def scenario():
            async with running(routes) as server:
                return await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", '"stale"'),),
                )

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert body != b""
        assert headers["etag"] != '"stale"'

    def test_multiple_values_and_wildcard(self, routes):
        async def scenario():
            async with running(routes) as server:
                _, headers, _ = await request(server.port, "/ship_to?name=A")
                etag = headers["etag"]
                multi = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", f'"nope", {etag}'),),
                )
                wildcard = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", "*"),),
                )
                return multi[0], wildcard[0]

        multi_status, wildcard_status = asyncio.run(scenario())
        assert multi_status == 304
        assert wildcard_status == 304

    def test_304_applies_even_on_a_cache_miss(self, routes):
        # The ETag is a content hash: a client can revalidate a response
        # the server itself no longer has cached.
        async def scenario():
            async with running(routes) as server:
                _, headers, _ = await request(server.port, "/ship_to?name=A")
                server.cache.clear()
                status, _, _ = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", headers["etag"]),),
                )
                return status, server.cache.snapshot()

        status, snapshot = asyncio.run(scenario())
        assert status == 304
        assert snapshot["stores"] == 2  # re-rendered and re-stored

    def test_head_carries_etag_and_length_but_no_body(self, routes):
        async def scenario():
            async with running(routes) as server:
                get = await request(server.port, "/ship_to?name=A")
                head = await request(
                    server.port, "/ship_to?name=A", method="HEAD"
                )
                return get, head

        get, head = asyncio.run(scenario())
        assert head[0] == 200
        assert head[2] == b""
        assert head[1]["etag"] == get[1]["etag"]
        assert int(head[1]["content-length"]) == len(get[2])

    def test_date_header_on_every_response(self, routes):
        async def scenario():
            async with running(routes) as server:
                return {
                    "page": await request(server.port, "/ship_to?name=A"),
                    "error": await request(server.port, "/nope"),
                    "stats": await request(server.port, "/-/stats"),
                }

        results = asyncio.run(scenario())
        for status, headers, _ in results.values():
            assert "date" in headers, status
            assert headers["date"].endswith(" GMT")

    def test_keep_alive_survives_a_304(self, routes):
        # A 304 has no body and no Content-Length; the framing must
        # leave the connection reusable for the next request.
        async def scenario():
            async with running(routes) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"GET /ship_to?name=A HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                etag = next(
                    line.split(b": ", 1)[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"etag")
                )
                length = next(
                    int(line.split(b":", 1)[1])
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                )
                await reader.readexactly(length)
                writer.write(
                    b"GET /ship_to?name=A HTTP/1.1\r\nHost: t\r\n"
                    b"If-None-Match: " + etag + b"\r\n\r\n"
                )
                await writer.drain()
                not_modified = await reader.readuntil(b"\r\n\r\n")
                writer.write(
                    b"GET /ship_to?name=A HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n"
                )
                await writer.drain()
                rest = await reader.read()
                writer.close()
                return not_modified, rest, server.stats["connections"]

        not_modified, rest, connections = asyncio.run(scenario())
        assert not_modified.startswith(b"HTTP/1.1 304 ")
        assert rest.startswith(b"HTTP/1.1 200 ")
        assert connections == 1


class TestCacheBehaviour:
    def test_repeat_request_is_a_hit_with_identical_bytes(
        self, routes, po_binding
    ):
        async def scenario():
            async with running(routes) as server:
                first = await request(server.port, "/ship_to?name=Alice")
                second = await request(server.port, "/ship_to?name=Alice")
                return first, second, server.cache.snapshot()

        first, second, snapshot = asyncio.run(scenario())
        direct = Template(po_binding, SHIP_TO).render_text(name="Alice")
        assert first[2] == second[2] == direct.encode("utf-8")
        assert first[1]["etag"] == second[1]["etag"]
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1

    def test_query_noise_does_not_fragment_the_cache(self, routes):
        async def scenario():
            async with running(routes) as server:
                await request(server.port, "/ship_to?name=A")
                await request(server.port, "/ship_to?name=A&utm_source=x")
                await request(server.port, "/ship_to?utm=y&name=A")
                return server.cache.snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["entries"] == 1
        assert snapshot["hits"] == 2

    def test_different_hole_values_get_distinct_entries(self, routes):
        async def scenario():
            async with running(routes) as server:
                a = await request(server.port, "/ship_to?name=A")
                b = await request(server.port, "/ship_to?name=B")
                return a, b, server.cache.snapshot()

        a, b, snapshot = asyncio.run(scenario())
        assert a[2] != b[2]
        assert a[1]["etag"] != b[1]["etag"]
        assert snapshot["entries"] == 2

    def test_errors_are_never_cached(self, routes):
        async def scenario():
            async with running(routes) as server:
                first = await request(server.port, "/item?q=100")  # 422
                second = await request(server.port, "/item?q=100")
                return first[0], second[0], server.cache.snapshot()

        first_status, second_status, snapshot = asyncio.run(scenario())
        assert first_status == second_status == 422
        assert snapshot["entries"] == 0
        assert snapshot["stores"] == 0

    def test_server_pages_bypass_the_cache(self, routes):
        async def scenario():
            async with running(routes) as server:
                await request(server.port, "/legacy?who=x")
                await request(server.port, "/legacy?who=x")
                return server.cache.snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["entries"] == 0
        assert snapshot["misses"] == 0  # never even consulted

    def test_disabled_cache_still_serves_with_etags(self, routes):
        async def scenario():
            async with running(routes, cache_entries=0) as server:
                first = await request(server.port, "/ship_to?name=A")
                status, _, _ = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", first[1]["etag"]),),
                )
                _, _, stats = await request(server.port, "/-/stats")
                return first, status, json.loads(stats)

        first, conditional_status, stats = asyncio.run(scenario())
        assert first[0] == 200 and "etag" in first[1]
        assert conditional_status == 304
        assert stats["server"]["cache"] is None

    def test_eviction_under_pressure(self, routes):
        async def scenario():
            async with running(routes, cache_entries=2) as server:
                for name in ("A", "B", "C"):
                    await request(server.port, f"/ship_to?name={name}")
                return server.cache.snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["entries"] == 2
        assert snapshot["evictions"] == 1

    def test_stats_endpoint_exposes_cache_counters(self, routes):
        async def scenario():
            async with running(routes) as server:
                await request(server.port, "/ship_to?name=A")
                await request(server.port, "/ship_to?name=A")
                _, _, body = await request(server.port, "/-/stats")
                return json.loads(body)

        stats = asyncio.run(scenario())
        cache = stats["server"]["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert cache["stores"] == 1
        assert cache["entries"] == 1

    def test_cache_outcomes_flow_into_obs(self, routes):
        obs.enable(reset=True)
        try:

            async def scenario():
                async with running(routes) as server:
                    await request(server.port, "/ship_to?name=A")
                    await request(server.port, "/ship_to?name=A")

            asyncio.run(scenario())
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters["serve.cache{outcome=miss}"] == 1
        assert counters["serve.cache{outcome=store}"] == 1
        assert counters["serve.cache{outcome=hit}"] == 1


class TestInvalidation:
    def test_route_rebuild_clears_the_cache(self, routes, po_binding):
        async def scenario():
            async with running(routes) as server:
                await request(server.port, "/ship_to?name=A")
                assert len(server.cache) == 1
                rebuilt = RouteTable()
                rebuilt.add_template(
                    "/ship_to", Template(po_binding, SHIP_TO)
                )
                server.set_routes(rebuilt)
                entries_after = len(server.cache)
                status, _, _ = await request(server.port, "/ship_to?name=A")
                return entries_after, status, server.cache.snapshot()

        entries_after, status, snapshot = asyncio.run(scenario())
        assert entries_after == 0
        assert status == 200
        assert snapshot["invalidations"] == 1
        assert snapshot["stores"] == 2  # rebuilt route re-rendered

    def test_conditional_get_survives_rebuild_of_identical_content(
        self, routes, po_binding
    ):
        # Content-hash ETags revalidate across a rebuild when the bytes
        # did not change — exactly what a deploy with no edits wants.
        async def scenario():
            async with running(routes) as server:
                _, headers, _ = await request(server.port, "/ship_to?name=A")
                rebuilt = RouteTable()
                rebuilt.add_template(
                    "/ship_to", Template(po_binding, SHIP_TO)
                )
                server.set_routes(rebuilt)
                status, _, _ = await request(
                    server.port,
                    "/ship_to?name=A",
                    headers=(("If-None-Match", headers["etag"]),),
                )
                return status

        assert asyncio.run(scenario()) == 304

    def test_edited_source_changes_the_response_key(self, po_binding):
        # Defense in depth: even without the explicit clear, a route
        # recompiled from different source cannot replay old entries,
        # because its content fingerprint is part of every key.
        same = Route(
            "/page", template=Template(po_binding, "<quantity>$q$</quantity>")
        )
        edited = Route(
            "/page", template=Template(po_binding, "<quantity> $q$ </quantity>")
        )
        assert same.response_key({"q": "1"}) != edited.response_key({"q": "1"})
        assert same.response_key({"q": "1"}) == Route(
            "/page", template=Template(po_binding, "<quantity>$q$</quantity>")
        ).response_key({"q": "1"})

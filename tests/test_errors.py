"""The exception hierarchy and error formatting."""

import pytest

from repro.errors import (
    DtdValidationError,
    Location,
    LocatedError,
    PxmlStaticError,
    PxmlSyntaxError,
    ReproError,
    SchemaError,
    SimpleTypeError,
    UnsupportedFeatureError,
    ValidationError,
    VdomTypeError,
    XmlSyntaxError,
)


class TestLocation:
    def test_str_with_source(self):
        assert str(Location(3, 7, 42, "file.xml")) == "file.xml:3:7"

    def test_str_without_source(self):
        assert str(Location(3, 7)) == "3:7"

    def test_ordering(self):
        assert Location(1, 5) < Location(2, 1)
        assert Location(2, 1) < Location(2, 9)

    def test_defaults(self):
        location = Location()
        assert (location.line, location.column, location.offset) == (1, 1, 0)


class TestLocatedError:
    def test_message_only(self):
        error = XmlSyntaxError("broken")
        assert str(error) == "broken"
        assert error.location is None

    def test_with_location(self):
        error = XmlSyntaxError("broken", Location(2, 3))
        assert str(error) == "2:3: broken"

    def test_with_path(self):
        error = ValidationError("bad value", path="/po/items/item[0]")
        assert str(error) == "bad value (at /po/items/item[0])"

    def test_with_both(self):
        error = ValidationError("bad", Location(1, 2), path="/a")
        assert str(error) == "1:2: bad (at /a)"

    def test_attributes_preserved(self):
        error = DtdValidationError("x", Location(5, 6), path="/p")
        assert error.message == "x"
        assert error.location.line == 5
        assert error.path == "/p"


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            XmlSyntaxError,
            SchemaError,
            UnsupportedFeatureError,
            ValidationError,
            SimpleTypeError,
            DtdValidationError,
            PxmlSyntaxError,
            PxmlStaticError,
        ],
    )
    def test_everything_is_a_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_vdom_errors_are_repro_errors(self):
        assert issubclass(VdomTypeError, ReproError)

    def test_simple_type_error_is_validation_error(self):
        """Facet violations can be caught as generic validation errors."""
        assert issubclass(SimpleTypeError, ValidationError)

    def test_unsupported_is_schema_error(self):
        assert issubclass(UnsupportedFeatureError, SchemaError)

    def test_pxml_static_is_located(self):
        assert issubclass(PxmlStaticError, LocatedError)

    def test_one_catch_at_the_api_boundary(self):
        """The documented pattern: catch ReproError once."""
        from repro import bind

        with pytest.raises(ReproError):
            bind("<not-a-schema/>")

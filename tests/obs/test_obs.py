"""The observability layer: registry semantics and the module-level gate.

The registry (``ObsRegistry``) is always live; ``repro.obs`` adds the
enable/disable gate whose disabled half must be free.  Tests here pin
the snapshot shape other code depends on — the ``--stats-json``
artifact, the bulk-pool worker deltas, and the benchmark assertions all
read these dicts directly.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import obs
from repro.obs import ObsRegistry, diff_snapshots, render_table


@pytest.fixture()
def clean():
    """Run with the module gate off and an empty registry, both ways."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_counter_accumulates(self):
        registry = ObsRegistry()
        registry.count("hits")
        registry.count("hits", 2)
        assert registry.snapshot()["counters"] == {"hits": 3}

    def test_labels_fold_into_key_sorted(self):
        registry = ObsRegistry()
        # Whatever order the call site uses, label names sort in the key.
        registry.count("route", route="fused", reason="ok")
        registry.count("route", reason="ok", route="fused")
        assert registry.snapshot()["counters"] == {
            "route{reason=ok,route=fused}": 2
        }

    def test_timer_records_count_and_total(self):
        registry = ObsRegistry()
        with registry.timeit("bind"):
            pass
        with registry.timeit("bind"):
            pass
        entry = registry.snapshot()["timers"]["bind"]
        assert entry["count"] == 2
        assert entry["total_ms"] >= 0

    def test_spans_nest_into_paths(self):
        registry = ObsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"outer", "outer/inner"}

    def test_span_stack_is_per_thread(self):
        registry = ObsRegistry()
        ready = threading.Event()

        def other():
            with registry.span("b"):
                ready.wait(5)

        worker = threading.Thread(target=other)
        with registry.span("a"):
            worker.start()
            # "b" opens on the other thread while "a" is open here; if
            # the stack were shared, one of them would record "a/b".
        ready.set()
        worker.join()
        assert set(registry.snapshot()["spans"]) == {"a", "b"}

    def test_snapshot_is_json_ready_copy(self):
        registry = ObsRegistry()
        registry.count("c")
        with registry.timeit("t"):
            pass
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        snapshot["counters"]["c"] = 99
        assert registry.snapshot()["counters"]["c"] == 1

    def test_merge_folds_worker_snapshot_in(self):
        parent, worker = ObsRegistry(), ObsRegistry()
        parent.count("docs", 2)
        worker.count("docs", 3)
        worker.count("errors")
        with worker.timeit("parse"):
            pass
        parent.merge(worker.snapshot())
        merged = parent.snapshot()
        assert merged["counters"] == {"docs": 5, "errors": 1}
        assert merged["timers"]["parse"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = ObsRegistry()
        registry.count("c")
        with registry.span("s"):
            pass
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "timers": {}, "spans": {}
        }


class TestDiffSnapshots:
    def test_delta_drops_unchanged_entries(self):
        registry = ObsRegistry()
        registry.count("stale")
        registry.count("hot")
        before = registry.snapshot()
        registry.count("hot", 4)
        registry.count("fresh")
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"] == {"hot": 4, "fresh": 1}

    def test_timer_delta_subtracts_count_and_total(self):
        registry = ObsRegistry()
        with registry.timeit("t"):
            pass
        before = registry.snapshot()
        with registry.timeit("t"):
            pass
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["timers"]["t"]["count"] == 1


class TestRenderTable:
    def test_empty_snapshot_says_so(self):
        empty = {"counters": {}, "timers": {}, "spans": {}}
        assert render_table(empty) == "(no observations recorded)"

    def test_sections_and_sorting(self):
        registry = ObsRegistry()
        registry.count("z.last")
        registry.count("a.first")
        with registry.timeit("bind"):
            pass
        table = render_table(registry.snapshot())
        assert "counters" in table and "timers" in table
        # Counter rows come out name-sorted.
        assert table.index("a.first") < table.index("z.last")
        assert "1x" in table  # the timer row


class TestModuleGate:
    def test_disabled_calls_are_noops(self, clean):
        obs.count("never")
        with obs.timeit("never"):
            pass
        with obs.span("never"):
            pass
        assert obs.snapshot() == {"counters": {}, "timers": {}, "spans": {}}
        # The disabled context manager is one shared singleton — no
        # allocation on the hot path.
        assert obs.timeit("a") is obs.timeit("b") is obs.span("c")

    def test_enable_records_and_disable_keeps_data(self, clean):
        obs.enable()
        obs.count("seen")
        obs.disable()
        obs.count("unseen")
        assert obs.snapshot()["counters"] == {"seen": 1}

    def test_enable_with_reset_clears_prior_observations(self, clean):
        obs.enable()
        obs.count("old")
        obs.enable(reset=True)
        obs.count("new")
        assert obs.snapshot()["counters"] == {"new": 1}

    def test_env_var_switches_collection_on(self, clean):
        src = str(Path(obs.__file__).resolve().parents[2])
        script = (
            "from repro import obs; "
            "obs.count('boot'); "
            "print(obs.enabled(), obs.snapshot()['counters'])"
        )
        for value, expected in (("1", "True {'boot': 1}"), ("0", "False {}")):
            env = dict(os.environ, PYTHONPATH=src)
            env[obs.OBS_ENV] = value
            out = subprocess.run(
                [sys.executable, "-c", script],
                env=env, capture_output=True, text=True, check=True,
            ).stdout.strip()
            assert out == expected

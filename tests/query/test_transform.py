"""Typed query→template transforms (the Sect. 8 guarantee, complete)."""

import pytest

from repro import obs
from repro.dom import serialize
from repro.errors import QueryError
from repro.query import Query, Rule, TransformProgram, TypedTransform


class TestTextTransforms:
    def test_po_to_wml_options(self, po_binding, wml_binding, full_po):
        """Cross-language transform: product names → WML options."""
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="p">$name:text$</option>',
            hole="name",
        )
        options = transform.apply(full_po)
        assert [serialize(option) for option in options] == [
            '<option value="p">Lawnmower</option>',
            '<option value="p">Baby Monitor</option>',
        ]

    def test_custom_extract(self, po_binding, wml_binding, full_po):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(po_binding, "purchaseOrder", "items/item"),
            template="<option>$sku:text$</option>",
            hole="sku",
            extract=lambda item: item.get_attribute("partNum"),
        )
        options = transform.apply(full_po)
        assert [option.content for option in options] == ["872-AA", "926-AA"]

    def test_other_holes_passed_through(self, po_binding, wml_binding, full_po):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="$base$">$name:text$</option>',
            hole="name",
        )
        options = transform.apply(full_po, base="/shop")
        assert all(
            option.get_attribute("value") == "/shop" for option in options
        )


class TestElementTransforms:
    def test_same_binding_element_hole(self, po_binding, full_po):
        """Query results feed an element hole of the same language."""
        transform = TypedTransform(
            binding_out=po_binding,
            query=Query(po_binding, "purchaseOrder", "items/item/comment"),
            template="<items><item partNum='000-XX'>"
            "<productName>copied note</productName>"
            "<quantity>1</quantity><USPrice>0.0</USPrice>"
            "$note:comment$</item></items>",
            hole="note",
        )
        fragments = transform.apply(full_po)
        assert len(fragments) == 1
        assert "Confirm this is electric" in serialize(fragments[0])

    def test_results_detached_from_source(self, po_binding, full_po):
        """Inserting a query hit moves the node; the transform output is
        usable independently (DOM adoption semantics)."""
        transform = TypedTransform(
            binding_out=po_binding,
            query=Query(po_binding, "purchaseOrder", "comment"),
            template="<items><item partNum='111-AB'>"
            "<productName>x</productName><quantity>1</quantity>"
            "<USPrice>1.0</USPrice>$c:comment$</item></items>",
            hole="c",
        )
        fragments = transform.apply(full_po)
        assert fragments[0].item_list[0].comment is not None


class TestStaticRejection:
    def test_incompatible_element_types_rejected(self, po_binding, full_po):
        """productName results cannot fill a comment hole — caught at
        definition time, no document involved."""
        with pytest.raises(QueryError, match="rejected statically"):
            TypedTransform(
                binding_out=po_binding,
                query=Query(
                    po_binding, "purchaseOrder", "items/item/productName"
                ),
                template="<items><item partNum='000-XX'>"
                "<productName>x</productName><quantity>1</quantity>"
                "<USPrice>0.0</USPrice>$note:comment$</item></items>",
                hole="note",
            )

    def test_unknown_hole_rejected(self, po_binding, wml_binding):
        with pytest.raises(QueryError, match="no hole named"):
            TypedTransform(
                binding_out=wml_binding,
                query=Query(
                    po_binding, "purchaseOrder", "items/item/productName"
                ),
                template="<option>x</option>",
                hole="ghost",
            )

    def test_extract_on_element_hole_rejected(self, po_binding, full_po):
        with pytest.raises(QueryError, match="extract"):
            TypedTransform(
                binding_out=po_binding,
                query=Query(po_binding, "purchaseOrder", "comment"),
                template="<items><item partNum='111-AB'>"
                "<productName>x</productName><quantity>1</quantity>"
                "<USPrice>1.0</USPrice>$c:comment$</item></items>",
                hole="c",
                extract=lambda element: element,
            )

    def test_attribute_values_rejected_for_element_holes(self, po_binding):
        """An .../@name query yields strings; wiring it into an element
        hole is caught at definition time, no document involved."""
        with pytest.raises(QueryError, match="attribute values"):
            TypedTransform(
                binding_out=po_binding,
                query=Query(
                    po_binding, "purchaseOrder", "items/item/@partNum"
                ),
                template="<items><item partNum='111-AB'>"
                "<productName>x</productName><quantity>1</quantity>"
                "<USPrice>1.0</USPrice>$c:comment$</item></items>",
                hole="c",
            )


class TestAttributeValueQueries:
    def test_attribute_values_feed_text_holes(
        self, po_binding, wml_binding, full_po
    ):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(po_binding, "purchaseOrder", "items/item/@partNum"),
            template="<option>$sku:text$</option>",
            hole="sku",
        )
        options = transform.apply(full_po)
        assert [option.content for option in options] == ["872-AA", "926-AA"]


class TestSegmentRoute:
    def _names_transform(self, po_binding, wml_binding):
        return TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="p">$name:text$</option>',
            hole="name",
        )

    def test_apply_text_byte_identical_to_dom_route(
        self, po_binding, wml_binding, full_po
    ):
        transform = self._names_transform(po_binding, wml_binding)
        texts = transform.apply_text(full_po)
        assert texts == [
            serialize(fragment) for fragment in transform.apply(full_po)
        ]

    def test_apply_text_with_other_holes(
        self, po_binding, wml_binding, full_po
    ):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="$base$">$name:text$</option>',
            hole="name",
        )
        texts = transform.apply_text(full_po, base="/shop")
        assert texts == [
            '<option value="/shop">Lawnmower</option>',
            '<option value="/shop">Baby Monitor</option>',
        ]

    def test_element_hole_parity(self, po_binding, full_po):
        transform = TypedTransform(
            binding_out=po_binding,
            query=Query(po_binding, "purchaseOrder", "comment"),
            template="<items><item partNum='111-AB'>"
            "<productName>x</productName><quantity>1</quantity>"
            "<USPrice>1.0</USPrice>$c:comment$</item></items>",
            hole="c",
        )
        # apply_text first: it never adopts hits out of the source tree,
        # so the DOM reference route still sees the same input after.
        texts = transform.apply_text(full_po)
        assert texts == [
            serialize(fragment) for fragment in transform.apply(full_po)
        ]

    def test_segment_route_counted(self, po_binding, wml_binding, full_po):
        transform = self._names_transform(po_binding, wml_binding)
        obs.enable(reset=True)
        try:
            transform.apply_text(full_po)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("query.transform{route=segment}") == 2

    def test_interpreted_template_still_byte_identical(
        self, po_binding, wml_binding, full_po
    ):
        from repro.pxml import Template

        template = Template(
            wml_binding,
            '<option value="p">$name:text$</option>',
            compiled=False,
        )
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template=template,
            hole="name",
        )
        texts = transform.apply_text(full_po)
        assert texts == [
            serialize(fragment) for fragment in transform.apply(full_po)
        ]


class TestTransformProgram:
    def _program(self, po_binding, wml_binding):
        return TransformProgram(
            po_binding,
            wml_binding,
            "purchaseOrder",
            [
                Rule(
                    "items/item/productName",
                    '<option value="p">$name:text$</option>',
                    "name",
                    label="names",
                ),
                Rule(
                    "items/item/@partNum",
                    "<option>$sku:text$</option>",
                    "sku",
                    label="skus",
                ),
            ],
        )

    def test_rule_order_then_document_order(
        self, po_binding, wml_binding, full_po
    ):
        program = self._program(po_binding, wml_binding)
        assert program.apply_text(full_po) == [
            '<option value="p">Lawnmower</option>',
            '<option value="p">Baby Monitor</option>',
            "<option>872-AA</option>",
            "<option>926-AA</option>",
        ]

    def test_segment_route_matches_dom_route(
        self, po_binding, wml_binding, full_po
    ):
        program = self._program(po_binding, wml_binding)
        texts = program.apply_text(full_po)
        assert texts == [
            serialize(fragment) for fragment in program.apply(full_po)
        ]

    def test_transform_text_joins(self, po_binding, wml_binding, full_po):
        program = self._program(po_binding, wml_binding)
        joined = program.transform_text(full_po, separator="\n")
        assert joined == "\n".join(program.apply_text(full_po))

    def test_result_classes_statically_known(self, po_binding, wml_binding):
        program = self._program(po_binding, wml_binding)
        assert [cls.__name__ for cls in program.result_classes()] == [
            "OptionElement"
        ]
        assert program.rule_labels == ["names", "skus"]

    def test_empty_program_rejected(self, po_binding, wml_binding):
        with pytest.raises(QueryError, match="at least one rule"):
            TransformProgram(po_binding, wml_binding, "purchaseOrder", [])

    def test_impossible_rule_named_in_error(self, po_binding, wml_binding):
        with pytest.raises(QueryError, match=r"rule 2 \('items/ghost'\)"):
            TransformProgram(
                po_binding,
                wml_binding,
                "purchaseOrder",
                [
                    Rule("comment", "<option>$c:text$</option>", "c"),
                    Rule("items/ghost", "<option>$c:text$</option>", "c"),
                ],
            )

    def test_incompatible_rule_named_by_label(self, po_binding):
        with pytest.raises(QueryError, match="skus.*rejected statically"):
            TransformProgram(
                po_binding,
                po_binding,
                "purchaseOrder",
                [
                    Rule(
                        "items/item/@partNum",
                        "<items><item partNum='111-AB'>"
                        "<productName>x</productName>"
                        "<quantity>1</quantity>"
                        "<USPrice>1.0</USPrice>$c:comment$</item></items>",
                        "c",
                        label="skus",
                    ),
                ],
            )

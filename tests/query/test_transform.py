"""Typed query→template transforms (the Sect. 8 guarantee, complete)."""

import pytest

from repro.dom import serialize
from repro.errors import QueryError
from repro.query import Query, TypedTransform


class TestTextTransforms:
    def test_po_to_wml_options(self, po_binding, wml_binding, full_po):
        """Cross-language transform: product names → WML options."""
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="p">$name:text$</option>',
            hole="name",
        )
        options = transform.apply(full_po)
        assert [serialize(option) for option in options] == [
            '<option value="p">Lawnmower</option>',
            '<option value="p">Baby Monitor</option>',
        ]

    def test_custom_extract(self, po_binding, wml_binding, full_po):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(po_binding, "purchaseOrder", "items/item"),
            template="<option>$sku:text$</option>",
            hole="sku",
            extract=lambda item: item.get_attribute("partNum"),
        )
        options = transform.apply(full_po)
        assert [option.content for option in options] == ["872-AA", "926-AA"]

    def test_other_holes_passed_through(self, po_binding, wml_binding, full_po):
        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(
                po_binding, "purchaseOrder", "items/item/productName"
            ),
            template='<option value="$base$">$name:text$</option>',
            hole="name",
        )
        options = transform.apply(full_po, base="/shop")
        assert all(
            option.get_attribute("value") == "/shop" for option in options
        )


class TestElementTransforms:
    def test_same_binding_element_hole(self, po_binding, full_po):
        """Query results feed an element hole of the same language."""
        transform = TypedTransform(
            binding_out=po_binding,
            query=Query(po_binding, "purchaseOrder", "items/item/comment"),
            template="<items><item partNum='000-XX'>"
            "<productName>copied note</productName>"
            "<quantity>1</quantity><USPrice>0.0</USPrice>"
            "$note:comment$</item></items>",
            hole="note",
        )
        fragments = transform.apply(full_po)
        assert len(fragments) == 1
        assert "Confirm this is electric" in serialize(fragments[0])

    def test_results_detached_from_source(self, po_binding, full_po):
        """Inserting a query hit moves the node; the transform output is
        usable independently (DOM adoption semantics)."""
        transform = TypedTransform(
            binding_out=po_binding,
            query=Query(po_binding, "purchaseOrder", "comment"),
            template="<items><item partNum='111-AB'>"
            "<productName>x</productName><quantity>1</quantity>"
            "<USPrice>1.0</USPrice>$c:comment$</item></items>",
            hole="c",
        )
        fragments = transform.apply(full_po)
        assert fragments[0].item_list[0].comment is not None


class TestStaticRejection:
    def test_incompatible_element_types_rejected(self, po_binding, full_po):
        """productName results cannot fill a comment hole — caught at
        definition time, no document involved."""
        with pytest.raises(QueryError, match="rejected statically"):
            TypedTransform(
                binding_out=po_binding,
                query=Query(
                    po_binding, "purchaseOrder", "items/item/productName"
                ),
                template="<items><item partNum='000-XX'>"
                "<productName>x</productName><quantity>1</quantity>"
                "<USPrice>0.0</USPrice>$note:comment$</item></items>",
                hole="note",
            )

    def test_unknown_hole_rejected(self, po_binding, wml_binding):
        with pytest.raises(QueryError, match="no hole named"):
            TypedTransform(
                binding_out=wml_binding,
                query=Query(
                    po_binding, "purchaseOrder", "items/item/productName"
                ),
                template="<option>x</option>",
                hole="ghost",
            )

    def test_extract_on_element_hole_rejected(self, po_binding, full_po):
        with pytest.raises(QueryError, match="extract"):
            TypedTransform(
                binding_out=po_binding,
                query=Query(po_binding, "purchaseOrder", "comment"),
                template="<items><item partNum='111-AB'>"
                "<productName>x</productName><quantity>1</quantity>"
                "<USPrice>1.0</USPrice>$c:comment$</item></items>",
                hole="c",
                extract=lambda element: element,
            )

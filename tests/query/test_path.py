"""Typed path queries (Sect. 8 extension)."""

import pytest

from repro.errors import QueryError
from repro.query import Query, select


class TestSelection:
    def test_simple_path(self, full_po):
        names = select(full_po, "items/item/productName")
        assert [n.content for n in names] == ["Lawnmower", "Baby Monitor"]

    def test_attribute_predicate(self, full_po):
        items = select(full_po, "items/item[@partNum='872-AA']")
        assert len(items) == 1
        assert items[0].product_name.content == "Lawnmower"

    def test_positional_predicate(self, full_po):
        second = select(full_po, "items/item[2]")
        assert len(second) == 1
        assert second[0].product_name.content == "Baby Monitor"

    def test_child_text_predicate(self, full_po):
        monitors = select(
            full_po, "items/item[productName='Baby Monitor']/USPrice"
        )
        assert [m.content for m in monitors] == ["39.98"]

    def test_wildcard_step(self, full_po):
        children = select(full_po, "*")
        assert [c.tag_name for c in children] == [
            "shipTo", "billTo", "comment", "items",
        ]

    def test_no_match_returns_empty(self, full_po):
        assert select(full_po, "items/item[@partNum='000-XX']") == []

    def test_results_are_typed(self, full_po):
        result = select(full_po, "shipTo/name")[0]
        assert type(result).__name__ == "NameElement"
        assert result.content == "Alice Smith"


class TestStaticTyping:
    def test_result_classes_known_statically(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "items/item/productName")
        assert [cls.__name__ for cls in query.result_classes] == [
            "ProductNameElement"
        ]

    def test_impossible_step_rejected_at_compile_time(self, po_binding):
        with pytest.raises(QueryError, match="no such child"):
            Query(po_binding, "purchaseOrder", "items/chapter")

    def test_unknown_attribute_predicate_rejected(self, po_binding):
        with pytest.raises(QueryError, match="never declares"):
            Query(po_binding, "purchaseOrder", "items/item[@color='red']")

    def test_unknown_child_predicate_rejected(self, po_binding):
        with pytest.raises(QueryError, match="never declares"):
            Query(po_binding, "purchaseOrder", "items/item[weight='1kg']")

    def test_unknown_root_rejected(self, po_binding):
        with pytest.raises(QueryError):
            Query(po_binding, "ghost", "a/b")

    def test_wildcard_types_union(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "*")
        names = {cls.__name__ for cls in query.result_classes}
        assert "ShipToElement" in names
        assert "ItemsElement" in names

    def test_substitution_members_included(self, subst_binding):
        query = Query(subst_binding, "notes", "comment")
        declarations = {d.name for d in query.result_declarations}
        assert declarations == {"comment"}
        members = Query(subst_binding, "notes", "*")
        names = {d.name for d in members.result_declarations}
        assert {"comment", "shipComment", "customerComment"} <= names


class TestApplication:
    def test_query_reuse_over_documents(self, po_binding, full_po):
        query = Query(po_binding, "purchaseOrder", "shipTo/city")
        assert [c.content for c in query.apply(full_po)] == ["Mill Valley"]

    def test_wrong_root_element_rejected(self, po_binding, full_po):
        query = Query(po_binding, "purchaseOrder", "shipTo")
        comment = po_binding.factory.create_comment("x")
        with pytest.raises(QueryError, match="compiled for"):
            query.apply(comment)


class TestDescendantAxis:
    def test_descendant_from_root(self, full_po):
        comments = select(full_po, "//comment")
        assert [c.content for c in comments] == [
            "Hurry, my lawn is going wild",
            "Confirm this is electric",
        ]

    def test_descendant_below_step(self, full_po):
        comments = select(full_po, "items//comment")
        assert [c.content for c in comments] == ["Confirm this is electric"]

    def test_descendant_skips_levels(self, full_po):
        dates = select(full_po, "//shipDate")
        assert [d.content for d in dates] == ["1999-05-21"]

    def test_descendant_result_classes(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "//productName")
        assert [cls.__name__ for cls in query.result_classes] == [
            "ProductNameElement"
        ]

    def test_impossible_descendant_rejected(self, po_binding):
        with pytest.raises(QueryError, match="no such descendant"):
            Query(po_binding, "purchaseOrder", "items//shipTo")


class TestUnionSteps:
    def test_union_selects_either_name(self, full_po):
        names = select(full_po, "(shipTo|billTo)/name")
        assert [n.content for n in names] == ["Alice Smith", "Robert Smith"]

    def test_union_result_classes(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "(shipTo|billTo)")
        names = {cls.__name__ for cls in query.result_classes}
        assert names == {"ShipToElement", "BillToElement"}

    def test_union_of_unknown_names_rejected(self, po_binding):
        with pytest.raises(QueryError, match="matches nothing"):
            Query(po_binding, "purchaseOrder", "(ghost|phantom)")


class TestAttributeSteps:
    def test_attribute_values(self, full_po):
        assert select(full_po, "items/item/@partNum") == [
            "872-AA",
            "926-AA",
        ]

    def test_attribute_step_from_root(self, full_po):
        assert select(full_po, "@orderDate") == ["1999-10-20"]

    def test_attribute_step_after_predicates(self, full_po):
        assert select(full_po, "items/item[1]/@partNum") == ["872-AA"]

    def test_attribute_queries_are_string_typed(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "items/item/@partNum")
        assert query.result_kind == "attribute-values"
        assert query.result_classes == ()

    def test_unknown_attribute_step_rejected(self, po_binding):
        with pytest.raises(QueryError, match="never declares"):
            Query(po_binding, "purchaseOrder", "items/item/@color")

    def test_attribute_step_must_be_final(self, po_binding):
        with pytest.raises(QueryError, match="final step"):
            Query(po_binding, "purchaseOrder", "shipTo/@country/name")

    def test_attribute_step_rejects_descendant_axis(self, po_binding):
        with pytest.raises(QueryError, match="descendant axis"):
            Query(po_binding, "purchaseOrder", "items/item//@partNum")


class TestPredicateSemantics:
    """Regression tests for the three bugs the stub engine had."""

    def test_zero_position_rejected_at_definition_time(self, po_binding):
        # Bug 1: [0] used to compile and silently return [] forever.
        with pytest.raises(QueryError, match="1-based"):
            Query(po_binding, "purchaseOrder", "items/item[0]")

    def test_position_above_max_occurs_rejected(self, po_binding):
        # Bug 1 (second half): shipTo occurs exactly once, so [2] can
        # never match any instance — a definition-time error.
        with pytest.raises(QueryError, match="at most 1 occurrence"):
            Query(po_binding, "purchaseOrder", "shipTo[2]")

    def test_optional_child_bound_is_its_max_occurs(self, po_binding):
        with pytest.raises(QueryError, match="at most 1 occurrence"):
            Query(po_binding, "purchaseOrder", "comment[2]")

    def test_unbounded_positions_compile(self, po_binding):
        # maxOccurs="unbounded": any position is reachable.
        query = Query(po_binding, "purchaseOrder", "items/item[99]")
        assert query.result_kind == "elements"

    def test_descendant_positions_exempt_from_bound(self, po_binding):
        # Descendant counts compound across depth; no static bound.
        Query(po_binding, "purchaseOrder", "//comment[2]")

    def test_chained_predicates_renumber_survivors(self, full_po):
        # Bug 2: the position used to be the raw sibling index, so the
        # second item could never be [1] after a filter.  XPath numbers
        # positions over the survivors of the preceding predicates.
        hits = select(full_po, "items/item[@partNum='926-AA'][1]")
        assert len(hits) == 1
        assert hits[0].product_name.content == "Baby Monitor"

    def test_chained_predicates_filter_left_to_right(self, full_po):
        # The first raw item fails the attribute test applied first.
        assert select(full_po, "items/item[1][@partNum='926-AA']") == []

    def test_select_from_non_root_element(self, full_po):
        # Bug 3: select() used to resolve the start element through the
        # global element map only, so any nested start raised.
        items = select(full_po.items, "item")
        assert [i.get_attribute("partNum") for i in items] == [
            "872-AA",
            "926-AA",
        ]

    def test_select_from_deeply_nested_element(self, full_po):
        item = full_po.items.item_list[0]
        assert [n.content for n in select(item, "productName")] == [
            "Lawnmower"
        ]


class TestPredicateValues:
    def test_double_quoted_value(self, full_po):
        items = select(full_po, 'items/item[@partNum="872-AA"]')
        assert len(items) == 1

    def test_entity_references_unescaped(self, po_binding):
        query = Query(
            po_binding,
            "purchaseOrder",
            "items/item[productName='Rock &amp; Roll']",
        )
        assert query.steps[-1].predicates[0].value == "Rock & Roll"

    def test_escaped_quotes_match_content(self, po_factory):
        f = po_factory
        items = f.create_items(
            f.create_item(
                f.create_product_name("it's \"electric\" & loud"),
                f.create_quantity(1),
                f.create_us_price("1.0"),
                part_num="111-AB",
            )
        )
        hits = select(
            items,
            "item[productName="
            "'it&apos;s &quot;electric&quot; &amp; loud']",
        )
        assert [h.get_attribute("partNum") for h in hits] == ["111-AB"]

    def test_bad_entity_rejected(self, po_binding):
        with pytest.raises(QueryError, match="bad predicate value"):
            Query(
                po_binding,
                "purchaseOrder",
                "items/item[productName='&bogus;']",
            )


class TestPathParsing:
    @pytest.mark.parametrize(
        "path",
        [
            "",
            "/abs",
            "a///b",
            "a//",
            "//",
            "a[",
            "a[bad",
            "a[@x=unquoted]",
            "@x[1]",
        ],
    )
    def test_bad_paths_rejected(self, po_binding, path):
        with pytest.raises(QueryError):
            Query(po_binding, "purchaseOrder", path)

    def test_leading_descendant_allowed(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "//quantity")
        assert query.steps[0].axis == "descendant"

"""Typed path queries (Sect. 8 extension)."""

import pytest

from repro.errors import QueryError
from repro.query import Query, select


class TestSelection:
    def test_simple_path(self, full_po):
        names = select(full_po, "items/item/productName")
        assert [n.content for n in names] == ["Lawnmower", "Baby Monitor"]

    def test_attribute_predicate(self, full_po):
        items = select(full_po, "items/item[@partNum='872-AA']")
        assert len(items) == 1
        assert items[0].product_name.content == "Lawnmower"

    def test_positional_predicate(self, full_po):
        second = select(full_po, "items/item[2]")
        assert len(second) == 1
        assert second[0].product_name.content == "Baby Monitor"

    def test_child_text_predicate(self, full_po):
        monitors = select(
            full_po, "items/item[productName='Baby Monitor']/USPrice"
        )
        assert [m.content for m in monitors] == ["39.98"]

    def test_wildcard_step(self, full_po):
        children = select(full_po, "*")
        assert [c.tag_name for c in children] == [
            "shipTo", "billTo", "comment", "items",
        ]

    def test_no_match_returns_empty(self, full_po):
        assert select(full_po, "items/item[@partNum='000-XX']") == []

    def test_results_are_typed(self, full_po):
        result = select(full_po, "shipTo/name")[0]
        assert type(result).__name__ == "NameElement"
        assert result.content == "Alice Smith"


class TestStaticTyping:
    def test_result_classes_known_statically(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "items/item/productName")
        assert [cls.__name__ for cls in query.result_classes] == [
            "ProductNameElement"
        ]

    def test_impossible_step_rejected_at_compile_time(self, po_binding):
        with pytest.raises(QueryError, match="no such child"):
            Query(po_binding, "purchaseOrder", "items/chapter")

    def test_unknown_attribute_predicate_rejected(self, po_binding):
        with pytest.raises(QueryError, match="never declares"):
            Query(po_binding, "purchaseOrder", "items/item[@color='red']")

    def test_unknown_child_predicate_rejected(self, po_binding):
        with pytest.raises(QueryError, match="never declares"):
            Query(po_binding, "purchaseOrder", "items/item[weight='1kg']")

    def test_unknown_root_rejected(self, po_binding):
        with pytest.raises(QueryError):
            Query(po_binding, "ghost", "a/b")

    def test_wildcard_types_union(self, po_binding):
        query = Query(po_binding, "purchaseOrder", "*")
        names = {cls.__name__ for cls in query.result_classes}
        assert "ShipToElement" in names
        assert "ItemsElement" in names

    def test_substitution_members_included(self, subst_binding):
        query = Query(subst_binding, "notes", "comment")
        declarations = {d.name for d in query.result_declarations}
        assert declarations == {"comment"}
        members = Query(subst_binding, "notes", "*")
        names = {d.name for d in members.result_declarations}
        assert {"comment", "shipComment", "customerComment"} <= names


class TestApplication:
    def test_query_reuse_over_documents(self, po_binding, full_po):
        query = Query(po_binding, "purchaseOrder", "shipTo/city")
        assert [c.content for c in query.apply(full_po)] == ["Mill Valley"]

    def test_wrong_root_element_rejected(self, po_binding, full_po):
        query = Query(po_binding, "purchaseOrder", "shipTo")
        comment = po_binding.factory.create_comment("x")
        with pytest.raises(QueryError, match="compiled for"):
            query.apply(comment)


class TestPathParsing:
    @pytest.mark.parametrize(
        "path", ["", "/abs", "a//b", "a[", "a[bad", "a[@x=unquoted]"]
    )
    def test_bad_paths_rejected(self, po_binding, path):
        with pytest.raises(QueryError):
            Query(po_binding, "purchaseOrder", path)

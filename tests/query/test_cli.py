"""The ``vdom-generate query`` / ``transform`` subcommands."""

import pytest

from repro.cli import main
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA
from repro.schemas.purchase_order import PURCHASE_ORDER_DOCUMENT


@pytest.fixture
def site(tmp_path):
    """Schema + document + template files on disk for the CLI."""
    schema = tmp_path / "po.xsd"
    schema.write_text(PURCHASE_ORDER_SCHEMA)
    document = tmp_path / "po.xml"
    document.write_text(PURCHASE_ORDER_DOCUMENT)
    wml = tmp_path / "wml.xsd"
    wml.write_text(WML_SCHEMA)
    template = tmp_path / "option.pxml"
    template.write_text('<option value="p">$name:text$</option>')
    return tmp_path


class TestQueryCommand:
    def test_element_hits_serialized(self, site, capsys):
        code = main(
            [
                "--no-cache",
                "query",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "items/item/productName",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.splitlines() == [
            "<productName>Lawnmower</productName>",
            "<productName>Baby Monitor</productName>",
        ]
        assert "2 hit(s)" in captured.err

    def test_attribute_values_printed_raw(self, site, capsys):
        code = main(
            [
                "--no-cache",
                "query",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "items/item/@partNum",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.splitlines() == ["872-AA", "926-AA"]

    def test_descendant_axis(self, site, capsys):
        code = main(
            [
                "--no-cache",
                "query",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "//shipDate",
            ]
        )
        assert code == 0
        assert "1999-05-21" in capsys.readouterr().out

    def test_impossible_path_is_an_error(self, site, capsys):
        code = main(
            [
                "--no-cache",
                "query",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "items/chapter",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "no such child" in captured.err
        assert captured.out == ""


class TestTransformCommand:
    def test_cross_schema_transform(self, site, capsys):
        code = main(
            [
                "--no-cache",
                "transform",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "--query",
                "items/item/productName",
                "--template",
                str(site / "option.pxml"),
                "--hole",
                "name",
                "--out-schema",
                str(site / "wml.xsd"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.splitlines() == [
            '<option value="p">Lawnmower</option>',
            '<option value="p">Baby Monitor</option>',
        ]
        assert "2 fragment(s)" in captured.err

    def test_dom_route_byte_identical(self, site, capsys):
        arguments = [
            "--no-cache",
            "transform",
            str(site / "po.xsd"),
            str(site / "po.xml"),
            "--query",
            "items/item/@partNum",
            "--template",
            str(site / "option.pxml"),
            "--hole",
            "name",
            "--out-schema",
            str(site / "wml.xsd"),
        ]
        assert main(arguments) == 0
        segment_output = capsys.readouterr().out
        assert main(arguments + ["--dom"]) == 0
        assert capsys.readouterr().out == segment_output

    def test_incompatible_transform_is_an_error(self, site, capsys):
        (site / "item.pxml").write_text(
            "<items><item partNum='111-AB'>"
            "<productName>x</productName><quantity>1</quantity>"
            "<USPrice>1.0</USPrice>$c:comment$</item></items>"
        )
        code = main(
            [
                "--no-cache",
                "transform",
                str(site / "po.xsd"),
                str(site / "po.xml"),
                "--query",
                "items/item/@partNum",
                "--template",
                str(site / "item.pxml"),
                "--hole",
                "c",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "rejected statically" in captured.err
        assert captured.out == ""

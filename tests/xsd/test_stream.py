"""Streaming validation: agreement with the DOM walk, constant state."""

import pytest

from repro.dom import parse_document
from repro.xsd import SchemaValidator, StreamingValidator, parse_schema
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
    WML_DIRECTORY_DOCUMENT,
    WML_SCHEMA,
)
from repro.schemas.variants import (
    ABSTRACT_HEAD_SCHEMA,
    SUBSTITUTION_GROUP_SCHEMA,
)


@pytest.fixture(scope="module")
def stream_validator():
    return StreamingValidator(parse_schema(PURCHASE_ORDER_SCHEMA))


@pytest.fixture(scope="module")
def dom_validator():
    return SchemaValidator(parse_schema(PURCHASE_ORDER_SCHEMA))


class TestAgreementWithDomWalk:
    def test_valid_document(self, stream_validator):
        assert stream_validator.validate_text(PURCHASE_ORDER_DOCUMENT) == []
        assert stream_validator.is_valid(PURCHASE_ORDER_DOCUMENT)

    @pytest.mark.parametrize("fault", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_every_fault_detected(self, stream_validator, fault):
        errors = stream_validator.validate_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS[fault]
        )
        assert errors, f"{fault} passed the streaming validator"

    @pytest.mark.parametrize("fault", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_verdict_agreement(self, stream_validator, dom_validator, fault):
        text = PURCHASE_ORDER_INVALID_DOCUMENTS[fault]
        stream_verdict = bool(stream_validator.validate_text(text))
        dom_verdict = bool(dom_validator.validate(parse_document(text)))
        assert stream_verdict == dom_verdict


class TestStreamingSpecifics:
    def test_wml_document(self):
        validator = StreamingValidator(parse_schema(WML_SCHEMA))
        assert validator.validate_text(WML_DIRECTORY_DOCUMENT) == []

    def test_unknown_root(self, stream_validator):
        errors = stream_validator.validate_text("<unknown/>")
        assert any("not a global element" in str(e) for e in errors)

    def test_recovery_after_unknown_subtree(self, stream_validator):
        """An unexpected child is reported once; its subtree is skipped
        and validation resumes at the right place."""
        text = PURCHASE_ORDER_DOCUMENT.replace(
            "<items>",
            "<bogus><deeply><nested>x</nested></deeply></bogus><items>",
        )
        errors = stream_validator.validate_text(text)
        assert len(errors) == 1
        assert "bogus" in str(errors[0])

    def test_errors_carry_locations(self, stream_validator):
        errors = stream_validator.validate_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["undeclared-element"]
        )
        assert any(error.location is not None for error in errors)

    def test_substitution_groups_stream(self):
        validator = StreamingValidator(parse_schema(SUBSTITUTION_GROUP_SCHEMA))
        assert validator.validate_text(
            "<notes><shipComment>x</shipComment><comment>y</comment></notes>"
        ) == []

    def test_abstract_head_stream(self):
        validator = StreamingValidator(parse_schema(ABSTRACT_HEAD_SCHEMA))
        assert validator.validate_text(
            "<notes><comment>x</comment></notes>"
        )
        assert validator.validate_text(
            "<notes><customerComment>x</customerComment></notes>"
        ) == []

    def test_fixed_element_value_stream(self):
        schema = parse_schema(
            '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">'
            '<xsd:element name="version" type="xsd:string" fixed="1.0"/>'
            "</xsd:schema>"
        )
        validator = StreamingValidator(schema)
        assert validator.validate_text("<version>1.0</version>") == []
        assert validator.validate_text("<version>2.0</version>")

    def test_text_split_across_events(self, stream_validator):
        """Entities split character data into several events; the
        accumulated text must still be validated as one literal."""
        text = PURCHASE_ORDER_DOCUMENT.replace(
            "<zip>90952</zip>", "<zip>909&#53;2</zip>", 1
        )
        assert stream_validator.validate_text(text) == []

"""Facet machinery, tested directly on FacetSet."""

import decimal

import pytest

from repro.errors import SchemaError, SimpleTypeError
from repro.xsd.facets import FacetSet, Pattern, WhiteSpace
from repro.xsd.simple import builtin_type


def derive(base_name="string", **kwargs):
    base = builtin_type(base_name)
    return base.facets.derive(parse=base.parse, **kwargs)


class TestPattern:
    def test_pattern_matches_fullmatch_semantics(self):
        pattern = Pattern(r"\d+")
        assert pattern.matches("123")
        assert not pattern.matches("123x")

    def test_alternative_patterns_within_one_step(self):
        facets = derive(patterns=("cat", "dog"))
        facets.check_lexical("cat")
        facets.check_lexical("dog")
        with pytest.raises(SimpleTypeError):
            facets.check_lexical("cow")

    def test_patterns_across_steps_all_required(self):
        step1 = derive(patterns=("[a-z]+",))
        step2 = step1.derive(parse=str, patterns=(".{3}",))
        step2.check_lexical("abc")
        with pytest.raises(SimpleTypeError):
            step2.check_lexical("ab")
        with pytest.raises(SimpleTypeError):
            step2.check_lexical("ABC")


class TestLengthFacets:
    def test_exact_length(self):
        facets = derive(length=3)
        facets.check_value("abc", "abc")
        with pytest.raises(SimpleTypeError):
            facets.check_value("ab", "ab")

    def test_length_counts_list_items(self):
        facets = derive(length=2)
        facets.check_value(("a", "b"), "a b")
        with pytest.raises(SimpleTypeError):
            facets.check_value(("a",), "a")

    def test_min_max_length(self):
        facets = derive(min_length=2, max_length=4)
        facets.check_value("abc", "abc")
        with pytest.raises(SimpleTypeError):
            facets.check_value("a", "a")
        with pytest.raises(SimpleTypeError):
            facets.check_value("abcde", "abcde")


class TestRangeFacets:
    def test_inclusive_bounds(self):
        facets = derive("integer", min_inclusive="0", max_inclusive="10")
        facets.check_value(0, "0")
        facets.check_value(10, "10")
        with pytest.raises(SimpleTypeError):
            facets.check_value(-1, "-1")
        with pytest.raises(SimpleTypeError):
            facets.check_value(11, "11")

    def test_exclusive_bounds(self):
        facets = derive("integer", min_exclusive="0", max_exclusive="10")
        facets.check_value(1, "1")
        facets.check_value(9, "9")
        with pytest.raises(SimpleTypeError):
            facets.check_value(0, "0")
        with pytest.raises(SimpleTypeError):
            facets.check_value(10, "10")

    def test_bounds_live_in_value_space(self):
        """'9' > '10' lexically; numerically the facet must use values."""
        facets = derive("integer", max_inclusive="10")
        facets.check_value(9, "9")

    def test_conflicting_bounds_rejected(self):
        with pytest.raises(SchemaError):
            derive("integer", min_inclusive="5", min_exclusive="4")
        with pytest.raises(SchemaError):
            derive("integer", max_inclusive="5", max_exclusive="6")


class TestDigitFacets:
    def test_total_digits(self):
        facets = derive("decimal", total_digits=4)
        facets.check_value(decimal.Decimal("12.34"), "12.34")
        with pytest.raises(SimpleTypeError):
            facets.check_value(decimal.Decimal("123.45"), "123.45")

    def test_fraction_digits(self):
        facets = derive("decimal", fraction_digits=2)
        facets.check_value(decimal.Decimal("0.12"), "0.12")
        with pytest.raises(SimpleTypeError):
            facets.check_value(decimal.Decimal("0.123"), "0.123")

    def test_trailing_zeros_do_not_count(self):
        facets = derive("decimal", fraction_digits=1)
        facets.check_value(decimal.Decimal("1.50"), "1.50")

    def test_fraction_above_total_rejected(self):
        with pytest.raises(SchemaError):
            derive("decimal", total_digits=2, fraction_digits=3)


class TestEnumeration:
    def test_membership_in_value_space(self):
        facets = derive("integer", enumeration=("1", "2", "3"))
        facets.check_value(2, "2")
        with pytest.raises(SimpleTypeError):
            facets.check_value(4, "4")

    def test_enumeration_replaced_not_merged(self):
        step1 = derive(enumeration=("a", "b"))
        base = builtin_type("string")
        step2 = step1.derive(parse=base.parse, enumeration=("a",))
        step2.check_value("a", "a")
        with pytest.raises(SimpleTypeError):
            step2.check_value("b", "b")


class TestWhiteSpaceOrdering:
    def test_cannot_weaken(self):
        collapse = FacetSet(white_space=WhiteSpace.COLLAPSE)
        with pytest.raises(SchemaError):
            collapse.derive(parse=str, white_space=WhiteSpace.PRESERVE)

    def test_can_strengthen(self):
        preserve = FacetSet(white_space=WhiteSpace.PRESERVE)
        derived = preserve.derive(parse=str, white_space=WhiteSpace.COLLAPSE)
        assert derived.white_space == WhiteSpace.COLLAPSE


class TestFixedFacets:
    def test_fixed_facet_cannot_change(self):
        fixed = derive("integer")  # integer has fractionDigits=0 fixed
        base = builtin_type("integer")
        with pytest.raises(SchemaError):
            base.facets.derive(parse=base.parse, fraction_digits=1)

    def test_fixed_facet_can_be_restated(self):
        base = builtin_type("integer")
        base.facets.derive(parse=base.parse, fraction_digits=0)

    def test_fixing_propagates(self):
        base = builtin_type("string")
        step1 = base.facets.derive(
            parse=base.parse,
            max_length=5,
            fixed_names=frozenset({"maxLength"}),
        )
        with pytest.raises(SchemaError):
            step1.derive(parse=base.parse, max_length=6)

"""Namespace-correct binding and validation.

Covers the instance-side behaviors the gauntlet relies on: the
qualified/unqualified forms matrix, Clark-notation error messages,
XSI recognition by resolved namespace (not lexical prefix), and the
default-namespace rules for unprefixed type references on the schema
side.
"""

import pytest

from repro.dom import parse_document
from repro.errors import SchemaError
from repro.xsd import SchemaValidator, StreamingValidator, parse_schema

TNS = "http://example.org/forms"


def _forms_schema(element_form: str, attribute_form: str = "unqualified"):
    return parse_schema(
        f"""
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                    xmlns:f="{TNS}"
                    targetNamespace="{TNS}"
                    elementFormDefault="{element_form}"
                    attributeFormDefault="{attribute_form}">
          <xsd:element name="root">
            <xsd:complexType>
              <xsd:sequence>
                <xsd:element name="child" type="xsd:string"/>
                <xsd:element name="flipped" type="xsd:string"
                             form="{'unqualified' if element_form == 'qualified' else 'qualified'}"/>
              </xsd:sequence>
              <xsd:attribute name="tag" type="xsd:string"/>
            </xsd:complexType>
          </xsd:element>
        </xsd:schema>
        """
    )


def _errors(schema, text):
    """Streaming-lane errors, with table/object parity and DOM validity
    agreement asserted on the side (the DOM validator words content-model
    errors differently, so only its verdict is compared)."""
    streaming = StreamingValidator(schema, use_tables=False).validate_text(text)
    tables = StreamingValidator(schema, use_tables=True).validate_text(text)
    assert [str(e) for e in streaming] == [str(e) for e in tables]
    dom = SchemaValidator(schema).validate(parse_document(text))
    assert bool(dom) == bool(streaming)
    return streaming


class TestFormsMatrix:
    def test_qualified_locals_accept_qualified_only(self):
        schema = _forms_schema("qualified")
        good = (
            f'<f:root xmlns:f="{TNS}" tag="x">'
            "<f:child>a</f:child><flipped>b</flipped></f:root>"
        )
        assert _errors(schema, good) == []

        unqualified_child = (
            f'<f:root xmlns:f="{TNS}">'
            "<child>a</child><flipped>b</flipped></f:root>"
        )
        messages = [str(e) for e in _errors(schema, unqualified_child)]
        assert messages and "<child>" in messages[0]

    def test_unqualified_locals_reject_qualified(self):
        schema = _forms_schema("unqualified")
        good = (
            f'<f:root xmlns:f="{TNS}">'
            "<child>a</child><f:flipped>b</f:flipped></f:root>"
        )
        assert _errors(schema, good) == []

        qualified_child = (
            f'<f:root xmlns:f="{TNS}">'
            "<f:child>a</f:child><f:flipped>b</f:flipped></f:root>"
        )
        assert _errors(schema, qualified_child)

    def test_qualified_attribute_form(self):
        schema = _forms_schema("qualified", attribute_form="qualified")
        good = (
            f'<f:root xmlns:f="{TNS}" f:tag="x">'
            "<f:child>a</f:child><flipped>b</flipped></f:root>"
        )
        assert _errors(schema, good) == []

        bare = (
            f'<f:root xmlns:f="{TNS}" tag="x">'
            "<f:child>a</f:child><flipped>b</flipped></f:root>"
        )
        messages = [str(e) for e in _errors(schema, bare)]
        assert messages and "'tag' is not declared" in messages[0]


class TestClarkMessages:
    def test_unexpected_element_reported_in_clark_notation(self):
        schema = _forms_schema("qualified")
        text = f'<f:root xmlns:f="{TNS}"><f:wrong>a</f:wrong></f:root>'
        messages = [str(e) for e in _errors(schema, text)]
        assert f"<{{{TNS}}}wrong>" in messages[0]
        assert f"<{{{TNS}}}root>" in messages[0]

    def test_no_namespace_schema_keeps_plain_names(self):
        schema = parse_schema(
            """
            <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
              <xsd:element name="root">
                <xsd:complexType>
                  <xsd:sequence>
                    <xsd:element name="child" type="xsd:string"/>
                  </xsd:sequence>
                </xsd:complexType>
              </xsd:element>
            </xsd:schema>
            """
        )
        assert not schema.uses_namespaces
        messages = [
            str(e) for e in _errors(schema, "<root><bad/></root>")
        ]
        assert "<bad>" in messages[0]
        assert "{" not in messages[0]


class TestXsiByResolvedNamespace:
    SCHEMA = """
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                    xmlns:t="http://example.org/xsi"
                    targetNamespace="http://example.org/xsi">
          <xsd:element name="root" type="t:BaseType"/>
          <xsd:complexType name="BaseType">
            <xsd:sequence>
              <xsd:element name="a" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:complexType name="WideType">
            <xsd:complexContent>
              <xsd:extension base="t:BaseType">
                <xsd:sequence>
                  <xsd:element name="b" type="xsd:string"/>
                </xsd:sequence>
              </xsd:extension>
            </xsd:complexContent>
          </xsd:complexType>
        </xsd:schema>
    """

    def test_xsi_type_honored_under_rebound_prefix(self):
        schema = parse_schema(self.SCHEMA)
        text = (
            '<t:root xmlns:t="http://example.org/xsi"'
            ' xmlns:s="http://www.w3.org/2001/XMLSchema-instance"'
            ' s:type="t:WideType"><a>x</a><b>y</b></t:root>'
        )
        assert _errors(schema, text) == []

    def test_fake_xsi_prefix_is_a_plain_attribute(self):
        """A prefix *spelled* xsi but bound to another namespace gets no
        special treatment: it is checked (and rejected) like any other
        undeclared attribute."""
        schema = parse_schema(self.SCHEMA)
        text = (
            '<t:root xmlns:t="http://example.org/xsi"'
            ' xmlns:xsi="http://example.org/not-xsi"'
            ' xsi:other="true"><a>x</a></t:root>'
        )
        messages = [str(e) for e in _errors(schema, text)]
        assert messages
        assert "{http://example.org/not-xsi}other" in messages[0]
        assert "not declared" in messages[0]

    def test_undeclared_xsi_prefix_keeps_conventional_meaning(self):
        schema = parse_schema(self.SCHEMA)
        text = (
            '<t:root xmlns:t="http://example.org/xsi"'
            ' xsi:type="t:WideType"><a>x</a><b>y</b></t:root>'
        )
        assert _errors(schema, text) == []


class TestDefaultNamespaceTypeReferences:
    def test_default_namespace_xsd_resolves_builtins(self):
        schema = parse_schema(
            """
            <schema xmlns="http://www.w3.org/2001/XMLSchema"
                    xmlns:t="http://example.org/d"
                    targetNamespace="http://example.org/d">
              <element name="root" type="string"/>
            </schema>
            """
        )
        assert (
            StreamingValidator(schema).validate_text(
                '<t:root xmlns:t="http://example.org/d">hello</t:root>'
            )
            == []
        )

    def test_default_namespace_xsd_local_types_shadow_builtins(self):
        schema = parse_schema(
            """
            <schema xmlns="http://www.w3.org/2001/XMLSchema"
                    xmlns:t="http://example.org/d"
                    targetNamespace="http://example.org/d">
              <simpleType name="code">
                <restriction base="string">
                  <enumeration value="ok"/>
                </restriction>
              </simpleType>
              <element name="root" type="code"/>
            </schema>
            """
        )
        validator = StreamingValidator(schema)
        assert validator.validate_text(
            '<t:root xmlns:t="http://example.org/d">ok</t:root>'
        ) == []
        assert validator.validate_text(
            '<t:root xmlns:t="http://example.org/d">nope</t:root>'
        )

    def test_non_xsd_default_namespace_does_not_reach_builtins(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_schema(
                """
                <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                            xmlns="http://example.org/vocab"
                            xmlns:t="http://example.org/vocab"
                            targetNamespace="http://example.org/vocab">
                  <xsd:element name="root" type="string"/>
                </xsd:schema>
                """
            )
        assert "built-ins do not apply" in str(excinfo.value)
        assert "{http://example.org/vocab}string" in str(excinfo.value)

    def test_no_default_namespace_tolerates_bare_builtin_names(self):
        schema = parse_schema(
            """
            <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                        xmlns:t="http://example.org/d"
                        targetNamespace="http://example.org/d">
              <xsd:element name="root" type="string"/>
            </xsd:schema>
            """
        )
        assert (
            StreamingValidator(schema).validate_text(
                '<t:root xmlns:t="http://example.org/d">hello</t:root>'
            )
            == []
        )

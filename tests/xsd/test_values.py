"""Primitive value-space parsing."""

import datetime
import decimal

import pytest

from repro.errors import SimpleTypeError
from repro.xsd import values


class TestBoolean:
    @pytest.mark.parametrize(
        "literal,expected",
        [("true", True), ("1", True), ("false", False), ("0", False)],
    )
    def test_valid(self, literal, expected):
        assert values.parse_boolean(literal) is expected

    @pytest.mark.parametrize("literal", ["TRUE", "yes", "", "01"])
    def test_invalid(self, literal):
        with pytest.raises(SimpleTypeError):
            values.parse_boolean(literal)


class TestDecimal:
    def test_forms(self):
        assert values.parse_decimal("148.95") == decimal.Decimal("148.95")
        assert values.parse_decimal("-.5") == decimal.Decimal("-0.5")
        assert values.parse_decimal("+3.") == decimal.Decimal("3")
        assert values.parse_decimal("0") == 0

    @pytest.mark.parametrize("literal", ["1e3", "abc", "", ".", "1..2"])
    def test_invalid(self, literal):
        with pytest.raises(SimpleTypeError):
            values.parse_decimal(literal)


class TestInteger:
    def test_valid(self):
        assert values.parse_integer("-42") == -42
        assert values.parse_integer("+7") == 7

    @pytest.mark.parametrize("literal", ["1.0", "", "abc", "1 2"])
    def test_invalid(self, literal):
        with pytest.raises(SimpleTypeError):
            values.parse_integer(literal)


class TestFloat:
    def test_special_values(self):
        assert values.parse_float("INF") == float("inf")
        assert values.parse_float("-INF") == float("-inf")
        assert values.parse_float("NaN") != values.parse_float("NaN")

    def test_scientific_notation(self):
        assert values.parse_float("1.5e3") == 1500.0

    def test_invalid(self):
        with pytest.raises(SimpleTypeError):
            values.parse_float("inf")


class TestTemporal:
    def test_date(self):
        assert values.parse_date("1999-05-21") == datetime.date(1999, 5, 21)

    def test_date_with_timezone_suffix(self):
        assert values.parse_date("1999-05-21Z") == datetime.date(1999, 5, 21)

    @pytest.mark.parametrize(
        "literal", ["1999-13-01", "1999-02-30", "99-05-21", "tomorrow"]
    )
    def test_invalid_dates(self, literal):
        with pytest.raises(SimpleTypeError):
            values.parse_date(literal)

    def test_time(self):
        assert values.parse_time("13:20:00") == datetime.time(13, 20)

    def test_time_with_fraction_and_zone(self):
        parsed = values.parse_time("13:20:00.5Z")
        assert parsed.microsecond == 500000
        assert parsed.tzinfo is not None

    def test_datetime(self):
        parsed = values.parse_datetime("1999-05-31T13:20:00-05:00")
        assert parsed.year == 1999
        assert parsed.utcoffset() == datetime.timedelta(hours=-5)

    def test_invalid_datetime(self):
        with pytest.raises(SimpleTypeError):
            values.parse_datetime("1999-05-31 13:20:00")

    def test_bad_zone_offset(self):
        with pytest.raises(SimpleTypeError):
            values.parse_time("13:20:00+15:00")


class TestDuration:
    def test_parse_components(self):
        duration = values.parse_duration("P1Y2M3DT4H5M6S")
        assert duration.months == 14
        assert duration.seconds == 3 * 86400 + 4 * 3600 + 5 * 60 + 6

    def test_negative(self):
        duration = values.parse_duration("-P1M")
        assert duration.months == -1

    def test_roundtrip_str(self):
        duration = values.parse_duration("P1Y2M3DT4H5M6S")
        assert values.parse_duration(str(duration)) == duration

    @pytest.mark.parametrize("literal", ["P", "PT", "1Y", "", "P-1Y"])
    def test_invalid(self, literal):
        with pytest.raises(SimpleTypeError):
            values.parse_duration(literal)


class TestBinary:
    def test_hex(self):
        assert values.parse_hex_binary("0fB8") == b"\x0f\xb8"

    def test_hex_odd_length_rejected(self):
        with pytest.raises(SimpleTypeError):
            values.parse_hex_binary("0fB")

    def test_base64(self):
        assert values.parse_base64_binary("aGVsbG8=") == b"hello"

    def test_base64_bad_padding_rejected(self):
        with pytest.raises(SimpleTypeError):
            values.parse_base64_binary("aGVsbG8")


class TestNames:
    def test_name_types(self):
        assert values.parse_name("a:b") == "a:b"
        assert values.parse_ncname("local") == "local"
        assert values.parse_nmtoken("123") == "123"

    def test_ncname_rejects_colon(self):
        with pytest.raises(SimpleTypeError):
            values.parse_ncname("a:b")

    def test_language(self):
        assert values.parse_language("en-US") == "en-US"
        with pytest.raises(SimpleTypeError):
            values.parse_language("waytoolongsubtag")
        with pytest.raises(SimpleTypeError):
            values.parse_language("en_US")


class TestGregorian:
    def test_valid_forms(self):
        assert values.parse_gregorian("gYear", "1999") == "1999"
        assert values.parse_gregorian("gYearMonth", "1999-05") == "1999-05"
        assert values.parse_gregorian("gMonthDay", "--05-21") == "--05-21"
        assert values.parse_gregorian("gDay", "---21") == "---21"
        assert values.parse_gregorian("gMonth", "--05") == "--05"

    def test_invalid(self):
        with pytest.raises(SimpleTypeError):
            values.parse_gregorian("gYear", "99")


class TestCanonicalForms:
    def test_boolean(self):
        assert values.canonical_boolean(True) == "true"
        assert values.canonical_boolean(False) == "false"

    def test_decimal(self):
        assert values.canonical_decimal(decimal.Decimal("1.50")) == "1.5"
        assert values.canonical_decimal(decimal.Decimal("3")) == "3.0"

    def test_float_specials(self):
        assert values.canonical_float(float("inf")) == "INF"
        assert values.canonical_float(float("nan")) == "NaN"

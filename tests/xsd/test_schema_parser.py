"""Parsing XSD documents into the component model."""

import pytest

from repro.errors import SchemaError, UnsupportedFeatureError
from repro.xsd import parse_schema
from repro.xsd.components import (
    ComplexType,
    Compositor,
    ContentType,
    DerivationMethod,
    ElementDeclaration,
    GroupReference,
    ModelGroup,
)
from repro.xsd.simple import SimpleType
from repro.automata.rex import UNBOUNDED
from repro.schemas import PURCHASE_ORDER_SCHEMA

_WRAP = '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">{}</xsd:schema>'


def schema_of(body: str):
    return parse_schema(_WRAP.format(body))


class TestPurchaseOrderSchema:
    """FIG2/3: the paper's schema parses into the expected components."""

    @pytest.fixture(scope="class")
    def schema(self):
        return parse_schema(PURCHASE_ORDER_SCHEMA)

    def test_global_elements(self, schema):
        assert set(schema.elements) == {"purchaseOrder", "comment"}

    def test_named_types(self, schema):
        assert set(schema.types) == {
            "PurchaseOrderType", "USAddress", "Items", "SKU"
        }

    def test_purchase_order_type_structure(self, schema):
        definition = schema.types["PurchaseOrderType"]
        assert isinstance(definition, ComplexType)
        group = definition.content.term
        assert isinstance(group, ModelGroup)
        assert group.compositor is Compositor.SEQUENCE
        names = [particle.term.name for particle in group.particles]
        assert names == ["shipTo", "billTo", "comment", "items"]
        assert group.particles[2].min_occurs == 0  # optional comment

    def test_element_ref_resolved_to_global(self, schema):
        group = schema.types["PurchaseOrderType"].content.term
        comment = group.particles[2].term
        assert comment is schema.elements["comment"]

    def test_attribute_uses(self, schema):
        uses = schema.types["USAddress"].attribute_uses
        assert uses["country"].fixed == "US"
        items = schema.types["Items"].content.term
        item = items.particles[0].term
        assert isinstance(item, ElementDeclaration)
        item_type = item.resolved_type()
        assert item_type.attribute_uses["partNum"].required

    def test_unbounded_occurs(self, schema):
        items = schema.types["Items"].content.term
        assert items.particles[0].max_occurs == UNBOUNDED
        assert items.particles[0].min_occurs == 0

    def test_anonymous_types_resolved(self, schema):
        items = schema.types["Items"].content.term
        item_type = items.particles[0].term.resolved_type()
        assert isinstance(item_type, ComplexType)
        assert item_type.name is None  # anonymous until normalization

    def test_sku_simple_type(self, schema):
        sku = schema.types["SKU"]
        assert isinstance(sku, SimpleType)
        assert sku.is_valid("872-AA")
        assert not sku.is_valid("872AA")

    def test_inline_simple_restriction(self, schema):
        items = schema.types["Items"].content.term
        item_type = items.particles[0].term.resolved_type()
        quantity = item_type.content.term.particles[1].term
        quantity_type = quantity.resolved_type()
        assert quantity_type.is_valid("99")
        assert not quantity_type.is_valid("100")


class TestStructuralFeatures:
    def test_forward_type_reference(self):
        schema = schema_of(
            '<xsd:element name="a" type="Later"/>'
            '<xsd:complexType name="Later"><xsd:sequence/></xsd:complexType>'
        )
        assert schema.elements["a"].resolved_type().name == "Later"

    def test_circular_type_reference_rejected(self):
        with pytest.raises(SchemaError, match="circular"):
            schema_of(
                '<xsd:simpleType name="A">'
                '<xsd:restriction base="B"/></xsd:simpleType>'
                '<xsd:simpleType name="B">'
                '<xsd:restriction base="A"/></xsd:simpleType>'
            )

    def test_recursive_complex_type_allowed(self):
        schema = schema_of(
            '<xsd:element name="tree" type="Tree"/>'
            '<xsd:complexType name="Tree"><xsd:sequence>'
            '<xsd:element name="child" type="Tree" minOccurs="0"'
            ' maxOccurs="unbounded"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        tree = schema.types["Tree"]
        child = tree.content.term.particles[0].term
        assert child.resolved_type() is tree

    def test_named_group_definition_and_reference(self):
        schema = schema_of(
            '<xsd:group name="AddressGroup"><xsd:choice>'
            '<xsd:element name="a" type="xsd:string"/>'
            '<xsd:element name="b" type="xsd:string"/>'
            "</xsd:choice></xsd:group>"
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:group ref="AddressGroup"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        reference = schema.types["T"].content.term.particles[0].term
        assert isinstance(reference, GroupReference)
        assert reference.resolved().compositor is Compositor.CHOICE

    def test_attribute_group(self):
        schema = schema_of(
            '<xsd:attributeGroup name="common">'
            '<xsd:attribute name="id" type="xsd:ID"/>'
            '<xsd:attribute name="lang" type="xsd:language"/>'
            "</xsd:attributeGroup>"
            '<xsd:complexType name="T"><xsd:sequence/>'
            '<xsd:attributeGroup ref="common"/></xsd:complexType>'
        )
        assert set(schema.types["T"].attribute_uses) == {"id", "lang"}

    def test_extension_combines_content(self):
        schema = schema_of(
            '<xsd:complexType name="Base"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string"/>'
            "</xsd:sequence></xsd:complexType>"
            '<xsd:complexType name="Derived"><xsd:complexContent>'
            '<xsd:extension base="Base"><xsd:sequence>'
            '<xsd:element name="y" type="xsd:string"/>'
            "</xsd:sequence></xsd:extension></xsd:complexContent>"
            "</xsd:complexType>"
        )
        derived = schema.types["Derived"]
        assert derived.derivation is DerivationMethod.EXTENSION
        effective = derived.effective_content().term
        assert isinstance(effective, ModelGroup)
        dfa = schema.content_dfa(derived)
        assert dfa.accepts(["x", "y"])
        assert not dfa.accepts(["y"])

    def test_restriction_replaces_content(self):
        schema = schema_of(
            '<xsd:complexType name="Base"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string" minOccurs="0"/>'
            "</xsd:sequence></xsd:complexType>"
            '<xsd:complexType name="Derived"><xsd:complexContent>'
            '<xsd:restriction base="Base"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string"/>'
            "</xsd:sequence></xsd:restriction></xsd:complexContent>"
            "</xsd:complexType>"
        )
        derived = schema.types["Derived"]
        dfa = schema.content_dfa(derived)
        assert dfa.accepts(["x"])
        assert not dfa.accepts([])  # the restriction made x mandatory

    def test_simple_content_extension(self):
        schema = schema_of(
            '<xsd:complexType name="Price"><xsd:simpleContent>'
            '<xsd:extension base="xsd:decimal">'
            '<xsd:attribute name="currency" type="xsd:string"/>'
            "</xsd:extension></xsd:simpleContent></xsd:complexType>"
        )
        price = schema.types["Price"]
        assert price.content_type is ContentType.SIMPLE
        assert price.simple_content.name == "decimal"
        assert "currency" in price.attribute_uses

    def test_mixed_content_flag(self):
        schema = schema_of(
            '<xsd:complexType name="P" mixed="true"><xsd:sequence>'
            '<xsd:element name="b" type="xsd:string" minOccurs="0"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        assert schema.types["P"].content_type is ContentType.MIXED

    def test_substitution_group_membership(self):
        schema = schema_of(
            '<xsd:element name="head" type="xsd:string"/>'
            '<xsd:element name="m1" type="xsd:string"'
            ' substitutionGroup="head"/>'
            '<xsd:element name="m2" type="xsd:string"'
            ' substitutionGroup="m1"/>'
        )
        members = {
            d.name for d in schema.substitution_members["head"]
        }
        assert members == {"m1", "m2"}  # transitive

    def test_substitution_member_inherits_head_type(self):
        schema = schema_of(
            '<xsd:element name="head" type="xsd:decimal"/>'
            '<xsd:element name="m" substitutionGroup="head"/>'
        )
        assert schema.elements["m"].resolved_type().name == "decimal"

    def test_all_group_parses(self):
        schema = schema_of(
            '<xsd:complexType name="T"><xsd:all>'
            '<xsd:element name="a" type="xsd:string"/>'
            '<xsd:element name="b" type="xsd:string"/>'
            "</xsd:all></xsd:complexType>"
        )
        group = schema.types["T"].content.term
        assert group.compositor is Compositor.ALL
        # The paper treats all like sequence:
        dfa = schema.content_dfa(schema.types["T"])
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["b", "a"])


class TestAttributeDetails:
    def test_prohibited_attribute_dropped(self):
        schema = schema_of(
            '<xsd:complexType name="T"><xsd:sequence/>'
            '<xsd:attribute name="x" type="xsd:string" use="prohibited"/>'
            "</xsd:complexType>"
        )
        assert "x" not in schema.types["T"].attribute_uses

    def test_attribute_with_inline_type(self):
        schema = schema_of(
            '<xsd:complexType name="T"><xsd:sequence/>'
            '<xsd:attribute name="level"><xsd:simpleType>'
            '<xsd:restriction base="xsd:integer">'
            '<xsd:maxInclusive value="5"/>'
            "</xsd:restriction></xsd:simpleType></xsd:attribute>"
            "</xsd:complexType>"
        )
        level = schema.types["T"].attribute_uses["level"]
        assert level.declaration.resolved_type().is_valid("5")
        assert not level.declaration.resolved_type().is_valid("6")

    def test_attribute_default_validated_against_type(self):
        with pytest.raises(SchemaError):
            schema_of(
                '<xsd:complexType name="T"><xsd:sequence/>'
                '<xsd:attribute name="n" type="xsd:int" default="oops"/>'
                "</xsd:complexType>"
            )

    def test_default_and_fixed_conflict(self):
        with pytest.raises(SchemaError):
            schema_of(
                '<xsd:complexType name="T"><xsd:sequence/>'
                '<xsd:attribute name="n" type="xsd:int"'
                ' default="1" fixed="2"/>'
                "</xsd:complexType>"
            )

    def test_required_with_default_rejected(self):
        with pytest.raises(SchemaError):
            schema_of(
                '<xsd:complexType name="T"><xsd:sequence/>'
                '<xsd:attribute name="n" type="xsd:int"'
                ' use="required" default="1"/>'
                "</xsd:complexType>"
            )


class TestSimpleContentDetails:
    def test_simple_content_restriction_applies_facets(self):
        schema = schema_of(
            '<xsd:complexType name="Price"><xsd:simpleContent>'
            '<xsd:extension base="xsd:decimal">'
            '<xsd:attribute name="cur" type="xsd:string"/>'
            "</xsd:extension></xsd:simpleContent></xsd:complexType>"
            '<xsd:complexType name="SmallPrice"><xsd:simpleContent>'
            '<xsd:restriction base="Price">'
            '<xsd:maxInclusive value="10"/>'
            "</xsd:restriction></xsd:simpleContent></xsd:complexType>"
        )
        small = schema.types["SmallPrice"]
        assert small.simple_content.is_valid("9.99")
        assert not small.simple_content.is_valid("10.01")
        # attributes inherited through the derivation chain
        assert "cur" in small.effective_attribute_uses()

    def test_simple_content_base_must_be_simpleish(self):
        with pytest.raises(SchemaError):
            schema_of(
                '<xsd:complexType name="Elemental"><xsd:sequence>'
                '<xsd:element name="x" type="xsd:string"/>'
                "</xsd:sequence></xsd:complexType>"
                '<xsd:complexType name="Bad"><xsd:simpleContent>'
                '<xsd:extension base="Elemental"/>'
                "</xsd:simpleContent></xsd:complexType>"
            )

    def test_mixed_flag_on_complex_content(self):
        schema = schema_of(
            '<xsd:complexType name="Base"><xsd:sequence/>'
            "</xsd:complexType>"
            '<xsd:complexType name="D"><xsd:complexContent mixed="true">'
            '<xsd:extension base="Base"><xsd:sequence>'
            '<xsd:element name="b" type="xsd:string" minOccurs="0"/>'
            "</xsd:sequence></xsd:extension></xsd:complexContent>"
            "</xsd:complexType>"
        )
        assert schema.types["D"].mixed


class TestUnsupportedAndErrors:
    @pytest.mark.parametrize(
        "body",
        [
            '<xsd:complexType name="T"><xsd:sequence><xsd:any/>'
            "</xsd:sequence></xsd:complexType>",
            '<xsd:redefine schemaLocation="other.xsd"/>',
        ],
    )
    def test_unsupported_features_flagged(self, body):
        with pytest.raises(UnsupportedFeatureError):
            schema_of(body)

    def test_location_less_import_is_tolerated(self):
        # The namespace is merely asserted to exist elsewhere; no
        # components are loaded, and nothing references them here.
        schema_of('<xsd:import namespace="http://other"/>')

    def test_include_of_missing_file_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="cannot load schema document"):
            schema_of('<xsd:include schemaLocation="/nonexistent/other.xsd"/>')

    def test_identity_constraints_flagged(self):
        with pytest.raises(UnsupportedFeatureError):
            schema_of(
                '<xsd:element name="r"><xsd:complexType><xsd:sequence/>'
                "</xsd:complexType>"
                '<xsd:key name="k"><xsd:selector xpath="x"/>'
                '<xsd:field xpath="@id"/></xsd:key></xsd:element>'
            )

    @pytest.mark.parametrize(
        "body",
        [
            '<xsd:element name="a" type="Missing"/>',
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element ref="ghost"/></xsd:sequence></xsd:complexType>'
            '<xsd:element name="r" type="T"/>',
            '<xsd:complexType name="T"/><xsd:complexType name="T"/>',
            '<xsd:element name="a" type="xsd:string"/>'
            '<xsd:element name="a" type="xsd:string"/>',
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="e" type="xsd:string"'
            ' minOccurs="3" maxOccurs="2"/></xsd:sequence></xsd:complexType>',
        ],
    )
    def test_broken_schemas_rejected(self, body):
        with pytest.raises(SchemaError):
            schema_of(body)

    def test_non_schema_root_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("<not-a-schema/>")

    def test_substitution_group_head_must_exist(self):
        with pytest.raises(SchemaError):
            schema_of(
                '<xsd:element name="m" type="xsd:string"'
                ' substitutionGroup="ghost"/>'
            )

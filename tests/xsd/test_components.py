"""Schema component behaviours (below the parser)."""

import pytest

from repro.errors import SchemaError
from repro.automata.rex import UNBOUNDED
from repro.xsd.components import (
    ANY_TYPE,
    AttributeDeclaration,
    AttributeUse,
    ComplexType,
    Compositor,
    ContentType,
    DerivationMethod,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Particle,
    Schema,
)
from repro.xsd.simple import builtin_type


def element(name, type_definition=None):
    return ElementDeclaration(
        name, type_definition=type_definition or builtin_type("string")
    )


class TestParticle:
    def test_occurs_once(self):
        assert Particle(element("a")).occurs_once()
        assert not Particle(element("a"), 0, 1).occurs_once()

    def test_is_optional(self):
        assert Particle(element("a"), 0, 1).is_optional()
        assert not Particle(element("a")).is_optional()

    def test_is_list_definition(self):
        """The paper's 'list expression': maxOccurs > 1."""
        assert Particle(element("a"), 0, UNBOUNDED).is_list()
        assert Particle(element("a"), 1, 2).is_list()
        assert not Particle(element("a"), 0, 1).is_list()


class TestElementDeclaration:
    def test_resolved_type_guard(self):
        declaration = ElementDeclaration("a", type_name="Later")
        with pytest.raises(SchemaError, match="no resolved type"):
            declaration.resolved_type()


class TestGroupReference:
    def test_unresolved_guard(self):
        with pytest.raises(SchemaError, match="unresolved"):
            GroupReference("ghost").resolved()

    def test_resolution(self):
        group = ModelGroup(Compositor.CHOICE, [Particle(element("a"))])
        reference = GroupReference("g", GroupDefinition("g", group))
        assert reference.resolved() is group


class TestComplexType:
    def test_content_type_classification(self):
        empty = ComplexType(content=Particle(ModelGroup(Compositor.SEQUENCE)))
        assert empty.content_type is ContentType.EMPTY
        with_elements = ComplexType(
            content=Particle(
                ModelGroup(Compositor.SEQUENCE, [Particle(element("a"))])
            )
        )
        assert with_elements.content_type is ContentType.ELEMENT_ONLY
        mixed = ComplexType(mixed=True, content=with_elements.content)
        assert mixed.content_type is ContentType.MIXED
        simple = ComplexType(simple_content=builtin_type("decimal"))
        assert simple.content_type is ContentType.SIMPLE

    def test_extension_effective_content_prepends_base(self):
        base = ComplexType(
            name="Base",
            content=Particle(
                ModelGroup(Compositor.SEQUENCE, [Particle(element("x"))])
            ),
        )
        derived = ComplexType(
            name="Derived",
            base=base,
            derivation=DerivationMethod.EXTENSION,
            content=Particle(
                ModelGroup(Compositor.SEQUENCE, [Particle(element("y"))])
            ),
        )
        schema = Schema()
        dfa = schema.content_dfa(derived)
        assert dfa.accepts(["x", "y"])
        assert not dfa.accepts(["y", "x"])

    def test_restriction_effective_content_is_own(self):
        base = ComplexType(
            name="Base",
            content=Particle(
                ModelGroup(Compositor.SEQUENCE, [Particle(element("x"), 0, 1)])
            ),
        )
        derived = ComplexType(
            name="Derived",
            base=base,
            derivation=DerivationMethod.RESTRICTION,
            content=Particle(ModelGroup(Compositor.SEQUENCE, [])),
        )
        schema = Schema()
        dfa = schema.content_dfa(derived)
        assert dfa.accepts([])
        assert not dfa.accepts(["x"])

    def test_attribute_inheritance(self):
        base = ComplexType(name="Base")
        base.attribute_uses["a"] = AttributeUse(
            AttributeDeclaration("a", type_definition=builtin_type("string"))
        )
        derived = ComplexType(
            name="Derived", base=base, derivation=DerivationMethod.EXTENSION
        )
        derived.attribute_uses["b"] = AttributeUse(
            AttributeDeclaration("b", type_definition=builtin_type("string"))
        )
        assert set(derived.effective_attribute_uses()) == {"a", "b"}

    def test_attribute_override_in_derived(self):
        base = ComplexType(name="Base")
        base.attribute_uses["a"] = AttributeUse(
            AttributeDeclaration("a", type_definition=builtin_type("string"))
        )
        derived = ComplexType(name="Derived", base=base)
        stricter = AttributeUse(
            AttributeDeclaration("a", type_definition=builtin_type("NMTOKEN")),
            required=True,
        )
        derived.attribute_uses["a"] = stricter
        assert derived.effective_attribute_uses()["a"] is stricter

    def test_is_derived_from(self):
        base = ComplexType(name="Base")
        middle = ComplexType(name="Middle", base=base)
        leaf = ComplexType(name="Leaf", base=middle)
        assert leaf.is_derived_from(base)
        assert leaf.is_derived_from(middle)
        assert not base.is_derived_from(leaf)


class TestSchemaLookups:
    def test_missing_lookups_raise(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.element("ghost")
        with pytest.raises(SchemaError):
            schema.type_definition("ghost")
        with pytest.raises(SchemaError):
            schema.group("ghost")

    def test_dfa_cache_reuse(self):
        schema = Schema()
        complex_type = ComplexType(
            name="T",
            content=Particle(
                ModelGroup(Compositor.SEQUENCE, [Particle(element("a"))])
            ),
        )
        first = schema.content_dfa(complex_type)
        second = schema.content_dfa(complex_type)
        assert first is second

    def test_substitution_alternatives_exclude_abstract_head(self):
        schema = Schema()
        head = ElementDeclaration(
            "head", abstract=True, type_definition=builtin_type("string")
        )
        member = ElementDeclaration(
            "member",
            substitution_group="head",
            type_definition=builtin_type("string"),
        )
        schema.elements["head"] = head
        schema.elements["member"] = member
        schema.substitution_members["head"] = [member]
        names = [d.name for d in schema.substitution_alternatives(head)]
        assert names == ["member"]

    def test_any_type_is_mixed(self):
        assert ANY_TYPE.content_type in (ContentType.MIXED, ContentType.EMPTY)
        assert ANY_TYPE.mixed

"""Unique Particle Attribution checking."""


from repro.xsd import parse_schema
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA, XHTML_SUBSET_SCHEMA

_WRAP = '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">{}</xsd:schema>'


class TestUpaCheck:
    def test_bundled_schemas_are_deterministic(self):
        for text in (PURCHASE_ORDER_SCHEMA, WML_SCHEMA, XHTML_SUBSET_SCHEMA):
            schema = parse_schema(text)
            assert schema.check_unique_particle_attribution() == []

    def test_classic_upa_violation_detected(self):
        # (a?, a) — after reading 'a' two particles compete.
        schema = parse_schema(
            _WRAP.format(
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element name="a" type="xsd:string" minOccurs="0"/>'
                '<xsd:element name="a" type="xsd:string"/>'
                "</xsd:sequence></xsd:complexType>"
            )
        )
        violations = schema.check_unique_particle_attribution()
        assert len(violations) == 1
        assert "Unique Particle Attribution" in str(violations[0])
        assert "'T'" in str(violations[0])

    def test_ambiguous_choice_detected(self):
        # (a, b?) | (a, c): 'a' is matched by two particles.
        schema = parse_schema(
            _WRAP.format(
                '<xsd:complexType name="T"><xsd:choice>'
                "<xsd:sequence>"
                '<xsd:element name="a" type="xsd:string"/>'
                '<xsd:element name="b" type="xsd:string" minOccurs="0"/>'
                "</xsd:sequence>"
                "<xsd:sequence>"
                '<xsd:element name="a" type="xsd:string"/>'
                '<xsd:element name="c" type="xsd:string"/>'
                "</xsd:sequence>"
                "</xsd:choice></xsd:complexType>"
            )
        )
        assert schema.check_unique_particle_attribution()

    def test_ambiguous_schema_still_validates_correctly(self):
        """The validator tolerates UPA violations (subset construction)."""
        from repro.dom import parse_document
        from repro.xsd import validate

        schema = parse_schema(
            _WRAP.format(
                '<xsd:element name="r" type="T"/>'
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element name="a" type="xsd:string" minOccurs="0"/>'
                '<xsd:element name="a" type="xsd:string"/>'
                "</xsd:sequence></xsd:complexType>"
            )
        )
        assert validate(parse_document("<r><a>1</a></r>"), schema) == []
        assert validate(parse_document("<r><a>1</a><a>2</a></r>"), schema) == []
        assert validate(parse_document("<r/>"), schema)

    def test_repetition_boundary_ambiguity(self):
        # a{1,2} followed by a? is ambiguous at the second 'a'.
        schema = parse_schema(
            _WRAP.format(
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element name="a" type="xsd:string" maxOccurs="2"/>'
                '<xsd:element name="a" type="xsd:string" minOccurs="0"/>'
                "</xsd:sequence></xsd:complexType>"
            )
        )
        assert schema.check_unique_particle_attribution()

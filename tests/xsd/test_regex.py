"""XSD pattern translation to Python regular expressions."""

import pytest

from repro.errors import SchemaError, UnsupportedFeatureError
from repro.xsd.regex import compile_pattern, translate_pattern


def fullmatch(pattern: str, text: str) -> bool:
    return compile_pattern(pattern).fullmatch(text) is not None


class TestBasics:
    def test_sku_pattern(self):
        """The paper's SKU type: \\d{3}-[A-Z]{2}."""
        pattern = r"\d{3}-[A-Z]{2}"
        assert fullmatch(pattern, "872-AA")
        assert not fullmatch(pattern, "87-AA")
        assert not fullmatch(pattern, "872-AAA")
        assert not fullmatch(pattern, "872-aa")

    def test_implicit_anchoring(self):
        assert not fullmatch("abc", "xabcx")
        assert fullmatch("abc", "abc")

    def test_alternation(self):
        assert fullmatch("cat|dog", "dog")
        assert not fullmatch("cat|dog", "catdog")

    def test_quantifiers(self):
        assert fullmatch("a?b+c*", "bb")
        assert fullmatch("a?b+c*", "abcc")
        assert not fullmatch("a?b+c*", "ac")

    def test_bounded_quantifier(self):
        assert fullmatch("a{2,3}", "aa")
        assert not fullmatch("a{2,3}", "aaaa")
        assert fullmatch("a{2,}", "aaaaa")

    def test_groups(self):
        assert fullmatch("(ab)+", "abab")


class TestXsdSpecifics:
    def test_caret_and_dollar_are_literals(self):
        assert fullmatch(r"\^\$", "^$")

    def test_dot_excludes_newlines(self):
        assert fullmatch("a.c", "abc")
        assert not fullmatch("a.c", "a\nc")
        assert not fullmatch("a.c", "a\rc")

    def test_name_escapes(self):
        assert fullmatch(r"\i\c*", "purchaseOrder")
        assert not fullmatch(r"\i\c*", "1abc")
        assert fullmatch(r"\i\c*", "_x-1.y")

    def test_whitespace_escape(self):
        assert fullmatch(r"a\sb", "a b")
        assert fullmatch(r"a\sb", "a\tb")

    def test_single_escapes(self):
        assert fullmatch(r"\(\)\[\]\{\}", "()[]{}")
        assert fullmatch(r"a\|b", "a|b")
        assert fullmatch(r"\n", "\n")


class TestCharacterClasses:
    def test_ranges(self):
        assert fullmatch("[a-f]+", "cafe")
        assert not fullmatch("[a-f]+", "z")

    def test_negation(self):
        assert fullmatch("[^0-9]+", "abc")
        assert not fullmatch("[^0-9]+", "a1")

    def test_subtraction(self):
        pattern = "[a-z-[aeiou]]+"
        assert fullmatch(pattern, "bcdfg")
        assert not fullmatch(pattern, "bca")

    def test_nested_subtraction(self):
        pattern = "[a-z-[m-p-[n]]]+"
        assert fullmatch(pattern, "an")
        assert not fullmatch(pattern, "m")

    def test_class_escape_inside_class(self):
        assert fullmatch(r"[\d.]+", "3.14")

    def test_literal_dash(self):
        assert fullmatch("[a-]+", "a-a")

    def test_caret_not_first_is_literal(self):
        assert fullmatch("[a^]+", "a^")

    def test_reversed_range_rejected(self):
        with pytest.raises(SchemaError):
            translate_pattern("[z-a]")


class TestErrors:
    @pytest.mark.parametrize(
        "pattern",
        ["(ab", "a)", "[abc", "a{2,1}", "a{x}", "*a", r"\q", "[]"],
    )
    def test_malformed_rejected(self, pattern):
        with pytest.raises(SchemaError):
            translate_pattern(pattern)

    def test_unicode_properties_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            translate_pattern(r"\p{L}+")

"""xsi:type — derived types in instance documents (type extension)."""

import pytest

from repro.dom import parse_document
from repro.xsd import SchemaValidator, StreamingValidator, parse_schema, validate
from repro.schemas.variants import ADDRESS_EXTENSION_SCHEMA


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ADDRESS_EXTENSION_SCHEMA)


BASE_ENTRY = (
    "<addressBook><entry>"
    "<name>n</name><street>s</street><city>c</city>"
    "</entry></addressBook>"
)

US_ENTRY = (
    "<addressBook>"
    '<entry xsi:type="USAddress" '
    'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">'
    "<name>n</name><street>s</street><city>c</city>"
    "<state>CA</state><zip>90952</zip>"
    "</entry></addressBook>"
)


class TestDomValidator:
    def test_derived_type_substitutes(self, schema):
        """A USAddress entry is valid where Address is declared — the
        paper's 'elements of type USAddress at a location where an
        element Address is expected'."""
        assert validate(parse_document(US_ENTRY), schema) == []

    def test_extension_content_without_xsi_type_rejected(self, schema):
        plain = US_ENTRY.replace(
            ' xsi:type="USAddress"', ""
        )
        assert validate(parse_document(plain), schema)

    def test_unknown_xsi_type(self, schema):
        document = parse_document(
            US_ENTRY.replace("USAddress", "MartianAddress")
        )
        errors = validate(document, schema)
        assert any("unknown type" in str(e) for e in errors)

    def test_underived_xsi_type_rejected(self, schema):
        document = parse_document(
            US_ENTRY.replace('xsi:type="USAddress"', 'xsi:type="AddressBook"')
        )
        errors = validate(document, schema)
        assert any("not derived" in str(e) for e in errors)

    def test_content_checked_against_override(self, schema):
        incomplete = US_ENTRY.replace("<zip>90952</zip>", "")
        errors = validate(parse_document(incomplete), schema)
        assert errors  # USAddress requires state AND zip

    def test_base_entry_still_fine(self, schema):
        assert validate(parse_document(BASE_ENTRY), schema) == []


class TestStreamingValidator:
    def test_agreement_with_dom(self, schema):
        streaming = StreamingValidator(schema)
        dom = SchemaValidator(schema)
        for text in (
            BASE_ENTRY,
            US_ENTRY,
            US_ENTRY.replace("USAddress", "Nonsense"),
            US_ENTRY.replace("<zip>90952</zip>", ""),
        ):
            assert bool(streaming.validate_text(text)) == bool(
                dom.validate(parse_document(text))
            )

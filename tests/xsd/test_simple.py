"""Simple types: built-in hierarchy, restriction, list, union."""

import decimal

import pytest

from repro.errors import SchemaError, SimpleTypeError
from repro.xsd.simple import (
    BUILTIN_TYPES,
    builtin_type,
    list_of,
    restrict,
    union_of,
)


class TestBuiltinHierarchy:
    def test_integer_hierarchy_bounds(self):
        assert builtin_type("byte").parse("127") == 127
        with pytest.raises(SimpleTypeError):
            builtin_type("byte").parse("128")
        with pytest.raises(SimpleTypeError):
            builtin_type("unsignedByte").parse("-1")
        assert builtin_type("positiveInteger").parse("1") == 1
        with pytest.raises(SimpleTypeError):
            builtin_type("positiveInteger").parse("0")
        with pytest.raises(SimpleTypeError):
            builtin_type("negativeInteger").parse("0")

    def test_derivation_chain(self):
        assert builtin_type("byte").is_derived_from(builtin_type("short"))
        assert builtin_type("byte").is_derived_from(builtin_type("decimal"))
        assert not builtin_type("string").is_derived_from(builtin_type("decimal"))

    def test_primitive_lookup(self):
        assert builtin_type("byte").primitive().name == "decimal"
        assert builtin_type("NMTOKEN").primitive().name == "string"

    def test_whitespace_handling_by_type(self):
        assert builtin_type("string").parse("  a  b  ") == "  a  b  "
        assert builtin_type("normalizedString").parse("a\tb") == "a b"
        assert builtin_type("token").parse("  a  b  ") == "a b"
        assert builtin_type("integer").parse("  42  ") == 42

    def test_builtin_list_types(self):
        assert builtin_type("NMTOKENS").parse("a b c") == ("a", "b", "c")
        with pytest.raises(SimpleTypeError):
            builtin_type("NMTOKENS").parse("   ")  # minLength 1

    def test_unknown_builtin_raises(self):
        with pytest.raises(SchemaError):
            builtin_type("nope")

    def test_registry_is_complete_enough(self):
        for name in (
            "string", "boolean", "decimal", "float", "double", "date",
            "dateTime", "time", "duration", "anyURI", "QName", "NMTOKEN",
            "ID", "IDREF", "integer", "positiveInteger", "long", "int",
            "short", "byte", "nonNegativeInteger", "unsignedLong",
            "hexBinary", "base64Binary", "language", "token", "Name",
        ):
            assert name in BUILTIN_TYPES


class TestRestriction:
    def test_pattern_facet(self):
        sku = restrict(builtin_type("string"), "SKU", patterns=(r"\d{3}-[A-Z]{2}",))
        assert sku.parse("926-AA") == "926-AA"
        with pytest.raises(SimpleTypeError):
            sku.parse("bogus")

    def test_range_facets_parsed_in_base_value_space(self):
        quantity = restrict(
            builtin_type("positiveInteger"), None, max_exclusive="100"
        )
        assert quantity.parse("99") == 99
        with pytest.raises(SimpleTypeError):
            quantity.parse("100")

    def test_enumeration_facet(self):
        align = restrict(
            builtin_type("string"), "Align",
            enumeration=("left", "center", "right"),
        )
        assert align.parse("left") == "left"
        with pytest.raises(SimpleTypeError):
            align.parse("justify")

    def test_length_facets(self):
        short = restrict(builtin_type("string"), None, min_length=2, max_length=4)
        assert short.parse("abc") == "abc"
        with pytest.raises(SimpleTypeError):
            short.parse("a")
        with pytest.raises(SimpleTypeError):
            short.parse("abcde")

    def test_digits_facets(self):
        price = restrict(
            builtin_type("decimal"), None, total_digits=5, fraction_digits=2
        )
        assert price.parse("148.95") == decimal.Decimal("148.95")
        with pytest.raises(SimpleTypeError):
            price.parse("1.955")
        with pytest.raises(SimpleTypeError):
            price.parse("123456")

    def test_stacked_restrictions_all_apply(self):
        base = restrict(builtin_type("integer"), None, min_inclusive="0")
        derived = restrict(base, None, max_inclusive="10")
        assert derived.parse("5") == 5
        with pytest.raises(SimpleTypeError):
            derived.parse("-1")  # inherited bound
        with pytest.raises(SimpleTypeError):
            derived.parse("11")  # own bound

    def test_patterns_across_steps_conjoin(self):
        step1 = restrict(builtin_type("string"), None, patterns=(r"[ab]+",))
        step2 = restrict(step1, None, patterns=(r".{2}",))
        assert step2.parse("ab") == "ab"
        with pytest.raises(SimpleTypeError):
            step2.parse("abc")  # fails step2 pattern
        with pytest.raises(SimpleTypeError):
            step2.parse("xy")  # fails step1 pattern

    def test_fixed_facet_cannot_change(self):
        base = restrict(
            builtin_type("integer"), None,
            fraction_digits=0,
        )
        # fractionDigits is fixed on xsd:integer itself.
        with pytest.raises(SchemaError):
            restrict(builtin_type("integer"), None, fraction_digits=2)

    def test_inconsistent_facets_rejected(self):
        with pytest.raises(SchemaError):
            restrict(builtin_type("string"), None, min_length=5, max_length=2)
        with pytest.raises(SchemaError):
            restrict(
                builtin_type("integer"), None,
                min_inclusive="5", max_inclusive="2",
            )

    def test_whitespace_cannot_weaken(self):
        with pytest.raises(SchemaError):
            restrict(builtin_type("token"), None, white_space="preserve")

    def test_range_facets_rejected_on_strings(self):
        with pytest.raises(SchemaError, match="not applicable"):
            restrict(builtin_type("string"), None, max_inclusive="z")

    def test_length_facets_rejected_on_numbers(self):
        with pytest.raises(SchemaError, match="not applicable"):
            restrict(builtin_type("integer"), None, max_length=3)

    def test_digit_facets_rejected_on_floats(self):
        with pytest.raises(SchemaError, match="decimal-derived"):
            restrict(builtin_type("float"), None, total_digits=4)

    def test_range_facets_allowed_on_dates(self):
        recent = restrict(
            builtin_type("date"), None, min_inclusive="2000-01-01"
        )
        assert recent.is_valid("2020-06-15")
        assert not recent.is_valid("1999-12-31")

    def test_length_facets_allowed_on_binary(self):
        digest = restrict(builtin_type("hexBinary"), None, length=2)
        assert digest.is_valid("0aFF")
        assert not digest.is_valid("0a")

    def test_range_facets_rejected_on_lists(self):
        with pytest.raises(SchemaError, match="list type"):
            restrict(
                list_of(builtin_type("integer")), None, max_inclusive="9"
            )


class TestListTypes:
    def test_list_parses_items(self):
        dates = list_of(builtin_type("date"))
        parsed = dates.parse("1999-05-21  2000-01-01")
        assert len(parsed) == 2

    def test_list_item_errors_propagate(self):
        dates = list_of(builtin_type("date"))
        with pytest.raises(SimpleTypeError):
            dates.parse("1999-05-21 yesterday")

    def test_list_length_facets_count_items(self):
        pair = restrict(list_of(builtin_type("integer")), None, length=2)
        assert pair.parse("1 2") == (1, 2)
        with pytest.raises(SimpleTypeError):
            pair.parse("1 2 3")

    def test_list_of_list_rejected(self):
        with pytest.raises(SchemaError):
            list_of(list_of(builtin_type("integer")))


class TestUnionTypes:
    def test_first_matching_member_wins(self):
        union = union_of((builtin_type("integer"), builtin_type("NCName")))
        assert union.parse("42") == 42
        assert union.parse("abc") == "abc"

    def test_no_member_matches(self):
        union = union_of((builtin_type("integer"), builtin_type("boolean")))
        with pytest.raises(SimpleTypeError) as info:
            union.parse("maybe")
        assert "matches no member" in str(info.value)

    def test_union_restriction_limited_to_pattern_enum(self):
        union = union_of((builtin_type("integer"), builtin_type("NCName")))
        with pytest.raises(SchemaError):
            restrict(union, None, min_inclusive="0")

    def test_empty_union_rejected(self):
        with pytest.raises(SchemaError):
            union_of(())

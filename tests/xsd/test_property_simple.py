"""Property-based tests on the simple-type system."""

import decimal

from hypothesis import given, settings, strategies as st

from repro.xsd.regex import compile_pattern
from repro.xsd.simple import builtin_type, list_of, restrict


class TestIntegerHierarchy:
    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(min_value=-(10**20), max_value=10**20))
    def test_integer_roundtrip(self, value):
        assert builtin_type("integer").parse(str(value)) == value

    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(min_value=-(10**6), max_value=10**6))
    def test_bounded_types_agree_with_their_ranges(self, value):
        for name, low, high in (
            ("byte", -128, 127),
            ("short", -32768, 32767),
            ("unsignedByte", 0, 255),
            ("positiveInteger", 1, None),
            ("nonPositiveInteger", None, 0),
        ):
            simple_type = builtin_type(name)
            in_range = (low is None or value >= low) and (
                high is None or value <= high
            )
            assert simple_type.is_valid(str(value)) == in_range


class TestDecimal:
    @settings(max_examples=200, deadline=None)
    @given(
        value=st.decimals(
            allow_nan=False, allow_infinity=False, places=6,
            min_value=decimal.Decimal("-1e12"),
            max_value=decimal.Decimal("1e12"),
        )
    )
    def test_decimal_roundtrip(self, value):
        literal = format(value, "f")
        assert builtin_type("decimal").parse(literal) == value

    @settings(max_examples=100, deadline=None)
    @given(
        bound=st.integers(-1000, 1000), value=st.integers(-1000, 1000)
    )
    def test_max_inclusive_boundary(self, bound, value):
        restricted = restrict(
            builtin_type("integer"), None, max_inclusive=str(bound)
        )
        assert restricted.is_valid(str(value)) == (value <= bound)


class TestWhitespaceInvariants:
    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(0, 10**6), pads=st.text(alphabet=" \t\n", max_size=4))
    def test_collapse_types_ignore_padding(self, value, pads):
        literal = f"{pads}{value}{pads}"
        assert builtin_type("integer").parse(literal) == value
        assert builtin_type("token").parse(literal) == str(value)

    @settings(max_examples=100, deadline=None)
    @given(text=st.text(max_size=30))
    def test_string_preserves_exactly(self, text):
        assert builtin_type("string").parse(text) == text


class TestListTypes:
    @settings(max_examples=100, deadline=None)
    @given(items=st.lists(st.integers(0, 999), max_size=10))
    def test_list_roundtrip(self, items):
        list_type = list_of(builtin_type("integer"))
        literal = " ".join(str(item) for item in items)
        assert list_type.parse(literal) == tuple(items)

    @settings(max_examples=100, deadline=None)
    @given(items=st.lists(st.integers(0, 999), min_size=1, max_size=10))
    def test_list_length_facet_agreement(self, items):
        list_type = restrict(
            list_of(builtin_type("integer")), None, max_length=5
        )
        literal = " ".join(str(item) for item in items)
        assert list_type.is_valid(literal) == (len(items) <= 5)


class TestPatternAgreement:
    @settings(max_examples=200, deadline=None)
    @given(text=st.text(alphabet="0123456789-ABZ", max_size=8))
    def test_sku_pattern_agrees_with_translated_regex(self, text):
        sku = restrict(
            builtin_type("string"), None, patterns=(r"\d{3}-[A-Z]{2}",)
        )
        regex = compile_pattern(r"\d{3}-[A-Z]{2}")
        assert sku.is_valid(text) == (regex.fullmatch(text) is not None)


class TestUnionOrder:
    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(-(10**6), 10**6))
    def test_union_prefers_first_member(self, value):
        from repro.xsd.simple import union_of

        union = union_of((builtin_type("integer"), builtin_type("string")))
        parsed = union.parse(str(value))
        assert parsed == value
        assert isinstance(parsed, int)

"""Multi-document schema loading: xsd:include, xsd:import, cycles,
chameleon adoption, and the related-documents manifest."""

import hashlib
import os

import pytest

from repro.errors import SchemaError
from repro.xsd import StreamingValidator, parse_schema, parse_schema_file

XSD = "http://www.w3.org/2001/XMLSchema"


def _resolver(documents):
    """Dict-backed resolver: location -> text, base ignored."""

    def resolve(location, base):
        try:
            return documents[location], location
        except KeyError:
            raise SchemaError(f"cannot load schema document '{location}'")

    return resolve


class TestInclude:
    def test_include_same_target_namespace(self):
        documents = {
            "types.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}"
                            targetNamespace="http://example.org/a">
                  <xsd:complexType name="T">
                    <xsd:sequence/>
                  </xsd:complexType>
                </xsd:schema>
            """
        }
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:a="http://example.org/a"
                        targetNamespace="http://example.org/a">
              <xsd:include schemaLocation="types.xsd"/>
              <xsd:element name="root" type="a:T"/>
            </xsd:schema>
            """,
            resolver=_resolver(documents),
        )
        assert "{http://example.org/a}T" in schema.types

    def test_include_target_namespace_mismatch_is_an_error(self):
        documents = {
            "other.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}"
                            targetNamespace="http://example.org/OTHER">
                  <xsd:element name="x" type="xsd:string"/>
                </xsd:schema>
            """
        }
        with pytest.raises(SchemaError) as excinfo:
            parse_schema(
                f"""
                <xsd:schema xmlns:xsd="{XSD}"
                            targetNamespace="http://example.org/a">
                  <xsd:include schemaLocation="other.xsd"/>
                </xsd:schema>
                """,
                resolver=_resolver(documents),
            )
        assert "include" in str(excinfo.value)

    def test_missing_document_is_a_schema_error(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_schema(
                f"""
                <xsd:schema xmlns:xsd="{XSD}">
                  <xsd:include schemaLocation="nowhere.xsd"/>
                </xsd:schema>
                """,
                resolver=_resolver({}),
            )
        assert "nowhere.xsd" in str(excinfo.value)

    def test_include_cycle_terminates(self):
        documents = {
            "a.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}" xmlns:n="urn:cycle"
                            targetNamespace="urn:cycle">
                  <xsd:include schemaLocation="b.xsd"/>
                  <xsd:element name="root" type="n:B"/>
                  <xsd:complexType name="A"><xsd:sequence/></xsd:complexType>
                </xsd:schema>
            """,
            "b.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}" xmlns:n="urn:cycle"
                            targetNamespace="urn:cycle">
                  <xsd:include schemaLocation="a.xsd"/>
                  <xsd:complexType name="B">
                    <xsd:complexContent>
                      <xsd:extension base="n:A"/>
                    </xsd:complexContent>
                  </xsd:complexType>
                </xsd:schema>
            """,
        }
        schema = parse_schema(
            documents["a.xsd"],
            location="a.xsd",
            resolver=_resolver(documents),
        )
        assert "{urn:cycle}A" in schema.types
        assert "{urn:cycle}B" in schema.types


class TestChameleon:
    DOCUMENTS = {
        "parts.xsd": f"""
            <xsd:schema xmlns:xsd="{XSD}" elementFormDefault="qualified">
              <xsd:element name="chapter" type="ChapterType"/>
              <xsd:complexType name="ChapterType">
                <xsd:sequence>
                  <xsd:element name="title" type="xsd:string"/>
                </xsd:sequence>
              </xsd:complexType>
            </xsd:schema>
        """
    }

    def test_components_adopt_including_namespace(self):
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:d="urn:doc"
                        targetNamespace="urn:doc"
                        elementFormDefault="qualified">
              <xsd:include schemaLocation="parts.xsd"/>
              <xsd:element name="doc">
                <xsd:complexType>
                  <xsd:sequence>
                    <xsd:element ref="d:chapter" maxOccurs="unbounded"/>
                  </xsd:sequence>
                </xsd:complexType>
              </xsd:element>
            </xsd:schema>
            """,
            resolver=_resolver(self.DOCUMENTS),
        )
        # Both the declaration and its unprefixed type reference land in
        # the adopted namespace — the chameleon transformation.
        assert "{urn:doc}chapter" in schema.elements
        assert "{urn:doc}ChapterType" in schema.types
        errors = StreamingValidator(schema).validate_text(
            '<doc xmlns="urn:doc"><chapter><title>T</title></chapter></doc>'
        )
        assert errors == []

    def test_same_document_included_twice_under_one_namespace(self):
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:d="urn:doc"
                        targetNamespace="urn:doc">
              <xsd:include schemaLocation="parts.xsd"/>
              <xsd:include schemaLocation="parts.xsd"/>
              <xsd:element name="doc" type="d:ChapterType"/>
            </xsd:schema>
            """,
            resolver=_resolver(self.DOCUMENTS),
        )
        assert "{urn:doc}ChapterType" in schema.types


class TestImport:
    def test_import_joins_namespaces(self):
        documents = {
            "common.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}"
                            targetNamespace="urn:common">
                  <xsd:element name="note" type="xsd:string"/>
                </xsd:schema>
            """
        }
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:c="urn:common"
                        targetNamespace="urn:main">
              <xsd:import namespace="urn:common"
                          schemaLocation="common.xsd"/>
              <xsd:element name="root">
                <xsd:complexType>
                  <xsd:sequence>
                    <xsd:element ref="c:note"/>
                  </xsd:sequence>
                </xsd:complexType>
              </xsd:element>
            </xsd:schema>
            """,
            resolver=_resolver(documents),
        )
        assert schema.namespaces == {"urn:main", "urn:common"}
        assert "{urn:common}note" in schema.elements

    def test_import_namespace_mismatch_is_an_error(self):
        documents = {
            "common.xsd": f"""
                <xsd:schema xmlns:xsd="{XSD}"
                            targetNamespace="urn:actual">
                  <xsd:element name="note" type="xsd:string"/>
                </xsd:schema>
            """
        }
        with pytest.raises(SchemaError):
            parse_schema(
                f"""
                <xsd:schema xmlns:xsd="{XSD}" targetNamespace="urn:main">
                  <xsd:import namespace="urn:promised"
                              schemaLocation="common.xsd"/>
                </xsd:schema>
                """,
                resolver=_resolver(documents),
            )

    def test_locationless_import_is_tolerated(self):
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" targetNamespace="urn:main">
              <xsd:import namespace="urn:elsewhere"/>
              <xsd:element name="root" type="xsd:string"/>
            </xsd:schema>
            """
        )
        assert "{urn:main}root" in schema.elements


class TestRelatedDocuments:
    def test_manifest_records_locations_and_hashes(self, tmp_path):
        included = (
            f'<xsd:schema xmlns:xsd="{XSD}" targetNamespace="urn:m">\n'
            '  <xsd:complexType name="T"><xsd:sequence/></xsd:complexType>\n'
            "</xsd:schema>\n"
        )
        (tmp_path / "types.xsd").write_text(included, encoding="utf-8")
        main = tmp_path / "main.xsd"
        main.write_text(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:m="urn:m"
                        targetNamespace="urn:m">
              <xsd:include schemaLocation="types.xsd"/>
              <xsd:element name="root" type="m:T"/>
            </xsd:schema>
            """,
            encoding="utf-8",
        )
        schema = parse_schema_file(main)
        assert len(schema.related_documents) == 1
        location, digest = schema.related_documents[0]
        assert os.path.basename(location) == "types.xsd"
        assert digest == hashlib.sha256(included.encode("utf-8")).hexdigest()

    def test_single_document_schema_has_empty_manifest(self):
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}">
              <xsd:element name="root" type="xsd:string"/>
            </xsd:schema>
            """
        )
        assert schema.related_documents == ()

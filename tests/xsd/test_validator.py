"""Runtime schema validation — the paper's generic-DOM baseline path."""

import pytest

from repro.dom import parse_document
from repro.xsd import SchemaValidator, parse_schema, validate
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
    WML_DIRECTORY_DOCUMENT,
    WML_SCHEMA,
)
from repro.schemas.variants import (
    ABSTRACT_HEAD_SCHEMA,
    ADDRESS_EXTENSION_SCHEMA,
    SUBSTITUTION_GROUP_SCHEMA,
)


@pytest.fixture(scope="module")
def po_validator():
    return SchemaValidator(parse_schema(PURCHASE_ORDER_SCHEMA))


class TestFig1Document:
    def test_valid_document_passes(self, po_validator):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        assert po_validator.validate(document) == []
        assert po_validator.is_valid(document)

    @pytest.mark.parametrize("name", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_every_mutation_detected(self, po_validator, name):
        """CLAIM-1 core: all ten schema-violating edits are caught."""
        document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[name])
        assert po_validator.validate(document), f"{name} passed validation"

    def test_assert_valid_raises_first_error(self, po_validator):
        document = parse_document(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]
        )
        with pytest.raises(Exception, match="maxExclusive"):
            po_validator.assert_valid(document)

    def test_errors_carry_paths(self, po_validator):
        document = parse_document(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]
        )
        errors = po_validator.validate(document)
        assert any("item" in (e.path or "") for e in errors)


class TestContentChecks:
    def test_unknown_root_reported(self, po_validator):
        assert po_validator.validate(parse_document("<unknown/>"))

    def test_wml_document_valid(self):
        schema = parse_schema(WML_SCHEMA)
        document = parse_document(WML_DIRECTORY_DOCUMENT)
        assert validate(document, schema) == []

    def test_mixed_content_allows_text(self):
        schema = parse_schema(WML_SCHEMA)
        document = parse_document(
            "<wml><card><p>hello <b>bold</b> world</p></card></wml>"
        )
        assert validate(document, schema) == []

    def test_empty_type_rejects_content(self):
        schema = parse_schema(WML_SCHEMA)
        document = parse_document(
            "<wml><card><p><br>text inside br</br></p></card></wml>"
        )
        assert validate(document, schema)

    def test_attribute_enumeration(self):
        schema = parse_schema(WML_SCHEMA)
        good = parse_document('<wml><card><p align="left"/></card></wml>')
        bad = parse_document('<wml><card><p align="diagonal"/></card></wml>')
        assert validate(good, schema) == []
        assert validate(bad, schema)

    def test_xmlns_attributes_ignored(self):
        schema = parse_schema(WML_SCHEMA)
        document = parse_document('<wml xmlns="http://example"><card/></wml>')
        assert validate(document, schema) == []


class TestSubstitutionGroups:
    @pytest.fixture(scope="class")
    def schema(self):
        return parse_schema(SUBSTITUTION_GROUP_SCHEMA)

    def test_members_substitute_for_head(self, schema):
        document = parse_document(
            "<notes><shipComment>a</shipComment>"
            "<comment>b</comment>"
            "<customerComment>c</customerComment></notes>"
        )
        assert validate(document, schema) == []

    def test_non_member_rejected(self, schema):
        document = parse_document("<notes><other>x</other></notes>")
        assert validate(document, schema)

    def test_abstract_head_cannot_appear(self):
        schema = parse_schema(ABSTRACT_HEAD_SCHEMA)
        direct = parse_document("<notes><comment>x</comment></notes>")
        member = parse_document("<notes><shipComment>x</shipComment></notes>")
        assert validate(direct, schema)
        assert validate(member, schema) == []


class TestTypeDerivation:
    def test_extension_instance_needs_all_parts(self):
        schema = parse_schema(ADDRESS_EXTENSION_SCHEMA)
        valid = parse_document(
            "<addressBook><entry><name>n</name><street>s</street>"
            "<city>c</city></entry></addressBook>"
        )
        assert validate(valid, schema) == []
        # An entry is declared as Address (3 children), not USAddress.
        too_many = parse_document(
            "<addressBook><entry><name>n</name><street>s</street>"
            "<city>c</city><state>st</state><zip>1</zip></entry></addressBook>"
        )
        assert validate(too_many, schema)


class TestSimpleContentAndFixed:
    SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="price" type="Price"/>
  <xsd:complexType name="Price">
    <xsd:simpleContent>
      <xsd:extension base="xsd:decimal">
        <xsd:attribute name="currency" type="xsd:string" use="required"/>
      </xsd:extension>
    </xsd:simpleContent>
  </xsd:complexType>
</xsd:schema>
"""

    def test_simple_content_value_checked(self):
        schema = parse_schema(self.SCHEMA)
        good = parse_document('<price currency="USD">14.99</price>')
        bad = parse_document('<price currency="USD">cheap</price>')
        assert validate(good, schema) == []
        assert validate(bad, schema)

    def test_required_attribute_on_simple_content(self):
        schema = parse_schema(self.SCHEMA)
        missing = parse_document("<price>14.99</price>")
        assert validate(missing, schema)

    def test_element_fixed_value(self):
        schema = parse_schema(
            '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">'
            '<xsd:element name="version" type="xsd:string" fixed="1.0"/>'
            "</xsd:schema>"
        )
        assert validate(parse_document("<version>1.0</version>"), schema) == []
        assert validate(parse_document("<version>2.0</version>"), schema)

"""Instance-driven lazy subsetting: root sniffing and reachability."""

from repro.xsd import StreamingValidator, parse_schema
from repro.xsd.subset import SNIFF_WINDOW, sniff_root_key, subset_schema

XSD = "http://www.w3.org/2001/XMLSchema"


class TestSniffRootKey:
    def test_default_namespace_root(self):
        assert (
            sniff_root_key('<order xmlns="urn:po"><item/></order>')
            == "{urn:po}order"
        )

    def test_prefixed_root(self):
        assert (
            sniff_root_key('<po:order xmlns:po="urn:po"/>')
            == "{urn:po}order"
        )

    def test_no_namespace_root_keeps_plain_name(self):
        assert sniff_root_key("<order><item/></order>") == "order"

    def test_malformed_document_returns_none(self):
        assert sniff_root_key("<order") is None
        assert sniff_root_key("") is None
        assert sniff_root_key("plain text, no markup") is None

    def test_huge_prolog_beyond_window_returns_none(self):
        text = "<!-- " + "x" * (SNIFF_WINDOW + 10) + " --><root/>"
        assert sniff_root_key(text) is None


def _library_schema():
    return parse_schema(
        f"""
        <xsd:schema xmlns:xsd="{XSD}" xmlns:l="urn:lib"
                    targetNamespace="urn:lib"
                    elementFormDefault="qualified">
          <xsd:element name="book" type="l:BookType"/>
          <xsd:element name="magazine" type="l:MagazineType"/>
          <xsd:complexType name="BookType">
            <xsd:sequence>
              <xsd:element name="title" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:complexType name="AnnotatedBookType">
            <xsd:complexContent>
              <xsd:extension base="l:BookType">
                <xsd:sequence>
                  <xsd:element name="note" type="xsd:string"/>
                </xsd:sequence>
              </xsd:extension>
            </xsd:complexContent>
          </xsd:complexType>
          <xsd:complexType name="MagazineType">
            <xsd:sequence>
              <xsd:element name="issue" type="xsd:int"/>
            </xsd:sequence>
          </xsd:complexType>
        </xsd:schema>
        """
    )


class TestSubsetSchema:
    def test_unreachable_globals_are_pruned(self):
        subset = subset_schema(_library_schema(), ("{urn:lib}book",))
        assert "{urn:lib}book" in subset.elements
        assert "{urn:lib}magazine" not in subset.elements
        assert "{urn:lib}MagazineType" not in subset.types
        assert subset.subset_roots == ("{urn:lib}book",)

    def test_derived_types_survive_for_xsi_type(self):
        """Types derived from a reachable type stay bound, so an
        ``xsi:type`` substitution validates identically to a full bind."""
        subset = subset_schema(_library_schema(), ("{urn:lib}book",))
        assert "{urn:lib}AnnotatedBookType" in subset.types

        doc = (
            '<l:book xmlns:l="urn:lib"'
            ' xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:type="l:AnnotatedBookType">'
            "<l:title>t</l:title><l:note>n</l:note></l:book>"
        )
        full_errors = StreamingValidator(_library_schema()).validate_text(doc)
        subset_errors = StreamingValidator(subset).validate_text(doc)
        assert [str(e) for e in subset_errors] == [
            str(e) for e in full_errors
        ]
        assert full_errors == []

    def test_verdicts_match_full_bind_for_invalid_documents(self):
        schema = _library_schema()
        subset = subset_schema(schema, ("{urn:lib}book",))
        doc = '<l:book xmlns:l="urn:lib"><l:title>t</l:title><l:extra/></l:book>'
        assert [
            str(e) for e in StreamingValidator(subset).validate_text(doc)
        ] == [str(e) for e in StreamingValidator(schema).validate_text(doc)]

    def test_substitution_members_of_reachable_heads_survive(self):
        schema = parse_schema(
            f"""
            <xsd:schema xmlns:xsd="{XSD}" xmlns:s="urn:sub"
                        targetNamespace="urn:sub"
                        elementFormDefault="qualified">
              <xsd:element name="root">
                <xsd:complexType>
                  <xsd:sequence>
                    <xsd:element ref="s:block" maxOccurs="unbounded"/>
                  </xsd:sequence>
                </xsd:complexType>
              </xsd:element>
              <xsd:element name="block" type="xsd:string" abstract="true"/>
              <xsd:element name="para" type="xsd:string"
                           substitutionGroup="s:block"/>
              <xsd:element name="orphan" type="xsd:string"/>
            </xsd:schema>
            """
        )
        subset = subset_schema(schema, ("{urn:sub}root",))
        assert "{urn:sub}para" in subset.elements
        assert "{urn:sub}orphan" not in subset.elements
        errors = StreamingValidator(subset).validate_text(
            '<s:root xmlns:s="urn:sub"><s:para>x</s:para></s:root>'
        )
        assert errors == []

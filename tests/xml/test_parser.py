"""Well-formedness parsing: event stream shape and error detection."""

import time

import pytest

from repro.errors import XmlSyntaxError
from repro.xml import (
    Characters,
    Comment,
    DoctypeDecl,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
    parse_events,
)


def kinds(events):
    return [type(event).__name__ for event in events]


class TestBasicDocuments:
    def test_single_empty_element(self):
        events = parse_events("<a/>")
        assert kinds(events) == ["StartElement", "EndElement"]
        assert events[0].self_closing

    def test_nested_elements(self):
        events = parse_events("<a><b><c/></b></a>")
        names = [e.name for e in events if isinstance(e, StartElement)]
        assert names == ["a", "b", "c"]

    def test_text_content(self):
        events = parse_events("<a>hello</a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].data == "hello"

    def test_attributes_in_order(self):
        events = parse_events('<a x="1" y="2"/>')
        assert events[0].attributes == (("x", "1"), ("y", "2"))

    def test_attribute_get_helper(self):
        start = parse_events('<a x="1"/>')[0]
        assert start.get("x") == "1"
        assert start.get("missing") is None
        assert start.get("missing", "d") == "d"

    def test_single_quoted_attributes(self):
        events = parse_events("<a x='v'/>")
        assert events[0].get("x") == "v"

    def test_xml_declaration(self):
        events = parse_events('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert isinstance(events[0], XmlDeclaration)
        assert events[0].version == "1.0"
        assert events[0].encoding == "UTF-8"

    def test_standalone_flag(self):
        events = parse_events('<?xml version="1.0" standalone="yes"?><a/>')
        assert events[0].standalone is True

    def test_bom_is_skipped(self):
        events = parse_events("﻿<a/>")
        assert isinstance(events[0], StartElement)


class TestMiscMarkup:
    def test_comment(self):
        events = parse_events("<a><!-- note --></a>")
        comments = [e for e in events if isinstance(e, Comment)]
        assert comments[0].data == " note "

    def test_processing_instruction(self):
        events = parse_events('<a><?target some data?></a>')
        pis = [e for e in events if isinstance(e, ProcessingInstruction)]
        assert pis[0].target == "target"
        assert pis[0].data == "some data"

    def test_pi_without_data(self):
        events = parse_events("<a><?go?></a>")
        pis = [e for e in events if isinstance(e, ProcessingInstruction)]
        assert pis[0].data == ""

    def test_cdata_section(self):
        events = parse_events("<a><![CDATA[a < b & c]]></a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].data == "a < b & c"
        assert text[0].cdata

    def test_doctype_with_ids(self):
        events = parse_events(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://x/dtd"><html/>'
        )
        doctype = events[0]
        assert isinstance(doctype, DoctypeDecl)
        assert doctype.name == "html"
        assert doctype.public_id == "-//W3C//DTD"
        assert doctype.system_id == "http://x/dtd"

    def test_doctype_internal_subset_captured(self):
        events = parse_events('<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>')
        assert events[0].internal_subset == "<!ELEMENT a EMPTY>"


class TestEntityHandling:
    def test_predefined_in_content(self):
        events = parse_events("<a>&lt;tag&gt; &amp; more</a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].data == "<tag> & more"

    def test_char_refs_in_attributes(self):
        events = parse_events('<a x="&#65;&#x42;"/>')
        assert events[0].get("x") == "AB"

    def test_internal_entity_used_in_content(self):
        events = parse_events(
            '<!DOCTYPE a [<!ENTITY who "world">]><a>hello &who;</a>'
        )
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].data == "hello world"

    def test_nested_entity_expansion(self):
        events = parse_events(
            '<!DOCTYPE a [<!ENTITY x "1&y;3"><!ENTITY y "2">]><a>&x;</a>'
        )
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].data == "123"

    def test_recursive_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="recursive|deep"):
            parse_events('<!DOCTYPE a [<!ENTITY x "&x;">]><a>&x;</a>')

    def test_attribute_value_normalization(self):
        events = parse_events('<a x="line1\nline2\tend"/>')
        assert events[0].get("x") == "line1 line2 end"

    def test_char_refs_bypass_attribute_normalization(self):
        """XML 1.0 §3.3.3: '&#10;' stays a newline in the value."""
        events = parse_events('<a x="p&#10;q&#9;r"/>')
        assert events[0].get("x") == "p\nq\tr"

    def test_lt_via_entity_rejected_in_attribute(self):
        with pytest.raises(XmlSyntaxError, match="'<'"):
            parse_events(
                '<!DOCTYPE a [<!ENTITY bad "x<y">]><a v="&bad;"/>'
            )

    def test_predefined_lt_allowed_in_attribute(self):
        events = parse_events('<a x="&lt;tag&gt;"/>')
        assert events[0].get("x") == "<tag>"

    def test_entity_replacement_whitespace_normalized(self):
        events = parse_events(
            '<!DOCTYPE a [<!ENTITY ws "p\nq">]><a x="&ws;"/>'
        )
        start = [e for e in events if isinstance(e, StartElement)][0]
        assert start.get("x") == "p q"


def _expansion_bomb(levels=8, fanout=10, where="content"):
    """A billion-laughs document: ~``fanout**levels`` chars if expanded."""
    declarations = ['<!ENTITY e0 "ha ha ha ha ha ha ha ha ha ha">']
    for level in range(1, levels):
        refs = f"&e{level - 1};" * fanout
        declarations.append(f'<!ENTITY e{level} "{refs}">')
    subset = "\n".join(declarations)
    use = f"&e{levels - 1};"
    if where == "attribute":
        return f"<!DOCTYPE a [\n{subset}\n]><a x=\"{use}\"/>"
    return f"<!DOCTYPE a [\n{subset}\n]><a>{use}</a>"


class TestEntityAmplification:
    """A per-document expansion budget caps billion-laughs documents.

    Depth alone does not stop the attack — the bomb is only 8 levels
    deep but expands to ~10^8 characters.  The parser charges every
    declared-entity substitution against one budget and fails fast with
    a clear error instead of grinding through gigabytes.
    """

    @pytest.mark.parametrize("where", ["content", "attribute"])
    def test_expansion_bomb_rejected(self, where):
        started = time.perf_counter()
        with pytest.raises(XmlSyntaxError, match="entity expansion exceeds"):
            parse_events(_expansion_bomb(where=where))
        # Fail-fast is the point: the budget trips long before the
        # ~10^8-character expansion is materialized.
        assert time.perf_counter() - started < 5.0

    def test_reference_parser_agrees(self):
        from repro.xml.reference import reference_events

        bomb = _expansion_bomb()
        with pytest.raises(XmlSyntaxError) as fast:
            parse_events(bomb)
        with pytest.raises(XmlSyntaxError) as slow:
            reference_events(bomb)
        assert str(fast.value) == str(slow.value)

    def test_budget_does_not_tax_honest_documents(self):
        # A few thousand expanded characters is normal use, far under
        # the cap; both charge points (content and attributes) apply.
        text = (
            '<!DOCTYPE a [<!ENTITY chunk "0123456789">]>'
            "<a y=\"&chunk;\">" + "&chunk;" * 500 + "</a>"
        )
        events = parse_events(text)
        data = "".join(e.data for e in events if isinstance(e, Characters))
        assert len(data) == 5000
        assert events[1].get("y") == "0123456789"


class TestWellFormednessErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # missing end tag
            "<a></b>",  # mismatched end tag
            "<a/><b/>",  # two roots
            "plain text",  # no element
            "",  # empty
            "<a x='1' x='2'/>",  # duplicate attribute
            "<a x=1/>",  # unquoted attribute
            "<a><b></a></b>",  # overlap
            "<a>&undefined;</a>",  # unknown entity
            "<a>text ]]> more</a>",  # CDATA-end in content
            '<a x="a<b"/>',  # '<' in attribute
            "<1a/>",  # bad name
            "<a><!-- -- --></a>",  # '--' in comment
            "<a><?xml bad?></a>",  # reserved PI target
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(XmlSyntaxError):
            parse_events(text)

    def test_error_carries_location(self):
        try:
            parse_events("<a>\n  <b></c>\n</a>")
        except XmlSyntaxError as error:
            assert error.location is not None
            assert error.location.line == 2
        else:
            pytest.fail("expected a syntax error")

    def test_doctype_after_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_events("<a/><!DOCTYPE a>")

    def test_multiple_doctypes_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_events("<!DOCTYPE a><!DOCTYPE a><a/>")


class TestLocations:
    def test_start_element_location(self):
        events = parse_events("<a>\n  <b/>\n</a>")
        b = [e for e in events if isinstance(e, StartElement) and e.name == "b"]
        assert b[0].location.line == 2
        assert b[0].location.column == 3

"""Low-level markup writers."""

import pytest

from repro.errors import XmlError
from repro.xml.serializer import (
    attribute_string,
    cdata_section,
    comment,
    end_tag,
    processing_instruction,
    start_tag,
    text,
    xml_declaration,
)


class TestTags:
    def test_start_tag(self):
        assert start_tag("a") == "<a>"
        assert start_tag("a", [("x", "1")]) == '<a x="1">'

    def test_self_closing(self):
        assert start_tag("br", self_closing=True) == "<br/>"

    def test_end_tag(self):
        assert end_tag("a") == "</a>"

    def test_attribute_escaping(self):
        assert attribute_string([("x", 'a"b<c')]) == ' x="a&quot;b&lt;c"'

    def test_illegal_names_rejected(self):
        with pytest.raises(XmlError):
            start_tag("1bad")
        with pytest.raises(XmlError):
            attribute_string([("bad name", "v")])


class TestMisc:
    def test_comment(self):
        assert comment(" hi ") == "<!-- hi -->"

    def test_comment_rejects_double_dash(self):
        with pytest.raises(XmlError):
            comment("a--b")
        with pytest.raises(XmlError):
            comment("ends with -")

    def test_processing_instruction(self):
        assert processing_instruction("t", "d") == "<?t d?>"
        assert processing_instruction("t") == "<?t?>"

    def test_pi_rejects_reserved_target(self):
        with pytest.raises(XmlError):
            processing_instruction("xml", "d")

    def test_pi_rejects_terminator_in_data(self):
        with pytest.raises(XmlError):
            processing_instruction("t", "a?>b")

    def test_cdata_splitting(self):
        rendered = cdata_section("a]]>b")
        assert rendered.startswith("<![CDATA[")
        assert "]]>b" not in rendered.replace("]]]]><![CDATA[>", "")

    def test_text_escapes(self):
        assert text("<&>") == "&lt;&amp;&gt;"

    def test_xml_declaration(self):
        assert xml_declaration() == '<?xml version="1.0" encoding="UTF-8"?>'
        assert xml_declaration(encoding=None) == '<?xml version="1.0"?>'

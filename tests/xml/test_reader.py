"""The position-tracking reader shared by all parsers."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml.reader import Reader


class TestPositionTracking:
    def test_initial_location(self):
        reader = Reader("abc")
        location = reader.location()
        assert (location.line, location.column, location.offset) == (1, 1, 0)

    def test_advance_updates_columns(self):
        reader = Reader("abc")
        reader.advance(2)
        assert reader.location().column == 3

    def test_newlines_reset_columns(self):
        reader = Reader("ab\ncd")
        reader.advance(4)
        location = reader.location()
        assert (location.line, location.column) == (2, 2)

    def test_source_name_in_location(self):
        reader = Reader("x", source="file.xml")
        assert str(reader.location()) == "file.xml:1:1"


class TestPrimitives:
    def test_peek_does_not_consume(self):
        reader = Reader("abc")
        assert reader.peek() == "a"
        assert reader.peek(2) == "ab"
        assert reader.offset == 0

    def test_looking_at(self):
        reader = Reader("<?xml")
        assert reader.looking_at("<?")
        assert not reader.looking_at("<!")

    def test_expect_success_and_failure(self):
        reader = Reader("<a>")
        reader.expect("<", "test")
        with pytest.raises(XmlSyntaxError, match="expected '>'"):
            reader.expect(">", "test")

    def test_at_end(self):
        reader = Reader("x")
        assert not reader.at_end()
        reader.advance(1)
        assert reader.at_end()

    def test_advance_past_end_is_safe(self):
        reader = Reader("x")
        assert reader.advance(5) == "x"
        assert reader.at_end()


class TestTokens:
    def test_skip_space(self):
        reader = Reader("  \t\n x")
        assert reader.skip_space()
        assert reader.peek() == "x"
        assert not reader.skip_space()

    def test_require_space(self):
        reader = Reader("x")
        with pytest.raises(XmlSyntaxError, match="white space"):
            reader.require_space("somewhere")

    def test_read_name(self):
        reader = Reader("tag-name>")
        assert reader.read_name() == "tag-name"
        assert reader.peek() == ">"

    def test_read_name_failure(self):
        reader = Reader("1x")
        with pytest.raises(XmlSyntaxError, match="expected a name"):
            reader.read_name("here")

    def test_read_until(self):
        reader = Reader("body-->tail")
        assert reader.read_until("-->", "comment") == "body"
        assert reader.peek() == "t"

    def test_read_until_missing_terminator(self):
        reader = Reader("never ends")
        with pytest.raises(XmlSyntaxError, match="unterminated"):
            reader.read_until("-->", "comment")

    def test_read_quoted_both_quotes(self):
        assert Reader("'v'").read_quoted("x") == "v"
        assert Reader('"v"').read_quoted("x") == "v"

    def test_read_quoted_requires_quote(self):
        with pytest.raises(XmlSyntaxError, match="quoted"):
            Reader("v").read_quoted("x")

"""Entity resolution and output escaping."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml.entities import (
    escape_attribute,
    escape_text,
    resolve_reference,
    unescape,
)


class TestEscaping:
    def test_text_escapes_markup_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_text_keeps_quotes(self):
        assert escape_text("'\"") == "'\""

    def test_attribute_escapes_quotes_and_whitespace(self):
        assert escape_attribute('say "hi"\n') == "say &quot;hi&quot;&#10;"

    def test_escape_unescape_roundtrip(self):
        original = 'a<b&c>"d\'e'
        assert unescape(escape_text(original)) == original
        assert unescape(escape_attribute(original)) == original


class TestQuickRejectGolden:
    """The quick-reject probe must agree byte-for-byte with the tables.

    ``escape_text``/``escape_attribute`` first scan with a compiled
    character class and return the input unchanged when nothing matches.
    These goldens pin the probe classes to the translate tables: if one
    gains a character the other lacks, a case below breaks.
    """

    TEXT_SPECIALS = "&<>\r"
    ATTR_SPECIALS = '&<>"\t\n\r'

    def test_text_probe_matches_table(self):
        from repro.xml.entities import _TEXT_ESCAPES

        for char in map(chr, range(0x20, 0x80)):
            expected = char.translate(_TEXT_ESCAPES)
            assert escape_text(char) == expected
            # Fast path fires exactly when the table would be a no-op.
            assert (escape_text(char) is char) == (expected == char)
        for char in "\t\n\r":
            assert escape_text(char) == char.translate(_TEXT_ESCAPES)

    def test_attr_probe_matches_table(self):
        from repro.xml.entities import _ATTR_ESCAPES

        for char in map(chr, range(0x20, 0x80)):
            expected = char.translate(_ATTR_ESCAPES)
            assert escape_attribute(char) == expected
            assert (escape_attribute(char) is char) == (expected == char)
        for char in "\t\n\r":
            assert escape_attribute(char) == char.translate(_ATTR_ESCAPES)

    def test_every_text_special_takes_slow_path(self):
        for char in self.TEXT_SPECIALS:
            assert escape_text(f"a{char}b") != f"a{char}b"

    def test_every_attr_special_takes_slow_path(self):
        for char in self.ATTR_SPECIALS:
            assert escape_attribute(f"a{char}b") != f"a{char}b"

    def test_clean_strings_returned_unchanged(self):
        clean = "The quick brown fox, München, 東京 — no markup."
        assert escape_text(clean) is clean
        assert escape_attribute(clean) is clean

    def test_mixed_golden_bytes(self):
        source = 'A & B < C > D " E \t F \n G \r H'
        assert escape_text(source) == (
            'A &amp; B &lt; C &gt; D " E \t F \n G &#13; H'
        )
        assert escape_attribute(source) == (
            "A &amp; B &lt; C &gt; D &quot; E &#9; F &#10; G &#13; H"
        )


class TestReferences:
    def test_predefined_entities(self):
        for body, expected in (
            ("lt", "<"), ("gt", ">"), ("amp", "&"), ("apos", "'"), ("quot", '"')
        ):
            assert resolve_reference(body) == expected

    def test_decimal_char_reference(self):
        assert resolve_reference("#65") == "A"

    def test_hex_char_reference(self):
        assert resolve_reference("#x41") == "A"
        assert resolve_reference("#x1F600") == "😀"

    def test_declared_entity(self):
        assert resolve_reference("co", {"co": "Example Co"}) == "Example Co"

    def test_undeclared_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("nope")

    def test_illegal_char_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("#0")

    def test_malformed_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("#xZZ")
        with pytest.raises(XmlSyntaxError):
            resolve_reference("1bad")


class TestUnescape:
    def test_mixed_references(self):
        assert unescape("1 &lt; 2 &#38; 3 &gt; 2") == "1 < 2 & 3 > 2"

    def test_unterminated_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("a &amp b")

    def test_no_references_fast_path(self):
        assert unescape("plain text") == "plain text"

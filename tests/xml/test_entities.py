"""Entity resolution and output escaping."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml.entities import (
    escape_attribute,
    escape_text,
    resolve_reference,
    unescape,
)


class TestEscaping:
    def test_text_escapes_markup_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_text_keeps_quotes(self):
        assert escape_text("'\"") == "'\""

    def test_attribute_escapes_quotes_and_whitespace(self):
        assert escape_attribute('say "hi"\n') == "say &quot;hi&quot;&#10;"

    def test_escape_unescape_roundtrip(self):
        original = 'a<b&c>"d\'e'
        assert unescape(escape_text(original)) == original
        assert unescape(escape_attribute(original)) == original


class TestReferences:
    def test_predefined_entities(self):
        for body, expected in (
            ("lt", "<"), ("gt", ">"), ("amp", "&"), ("apos", "'"), ("quot", '"')
        ):
            assert resolve_reference(body) == expected

    def test_decimal_char_reference(self):
        assert resolve_reference("#65") == "A"

    def test_hex_char_reference(self):
        assert resolve_reference("#x41") == "A"
        assert resolve_reference("#x1F600") == "😀"

    def test_declared_entity(self):
        assert resolve_reference("co", {"co": "Example Co"}) == "Example Co"

    def test_undeclared_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("nope")

    def test_illegal_char_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("#0")

    def test_malformed_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_reference("#xZZ")
        with pytest.raises(XmlSyntaxError):
            resolve_reference("1bad")


class TestUnescape:
    def test_mixed_references(self):
        assert unescape("1 &lt; 2 &#38; 3 &gt; 2") == "1 < 2 & 3 > 2"

    def test_unterminated_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("a &amp b")

    def test_no_references_fast_path(self):
        assert unescape("plain text") == "plain text"

"""XML character classes and name productions."""


from repro.xml.chars import (
    collapse_whitespace,
    is_name,
    is_name_char,
    is_name_start_char,
    is_ncname,
    is_nmtoken,
    is_space,
    is_xml_char,
    replace_whitespace,
)


class TestNameStartChar:
    def test_ascii_letters_start_names(self):
        assert is_name_start_char("a")
        assert is_name_start_char("Z")
        assert is_name_start_char("_")
        assert is_name_start_char(":")

    def test_digits_do_not_start_names(self):
        assert not is_name_start_char("0")
        assert not is_name_start_char("9")

    def test_punctuation_does_not_start_names(self):
        for char in "-.!@ <>":
            assert not is_name_start_char(char)

    def test_unicode_letters_start_names(self):
        assert is_name_start_char("é")
        assert is_name_start_char("Ω")
        assert is_name_start_char("中")


class TestNameChar:
    def test_continuation_extras(self):
        for char in "-.0123456789·":
            assert is_name_char(char)

    def test_space_is_not_a_name_char(self):
        assert not is_name_char(" ")


class TestName:
    def test_simple_names(self):
        assert is_name("purchaseOrder")
        assert is_name("xsd:element")
        assert is_name("_private")
        assert is_name("a-b.c")

    def test_rejects_bad_names(self):
        assert not is_name("")
        assert not is_name("1abc")
        assert not is_name("-abc")
        assert not is_name("a b")

    def test_ncname_rejects_colon(self):
        assert is_ncname("local")
        assert not is_ncname("pre:local")


class TestNmtoken:
    def test_nmtoken_may_start_with_digit(self):
        assert is_nmtoken("123")
        assert is_nmtoken("-x")

    def test_empty_is_not_nmtoken(self):
        assert not is_nmtoken("")

    def test_space_breaks_nmtoken(self):
        assert not is_nmtoken("a b")


class TestCharClasses:
    def test_control_chars_are_illegal(self):
        assert not is_xml_char("\x00")
        assert not is_xml_char("\x0b")

    def test_whitespace_controls_are_legal(self):
        for char in "\t\n\r":
            assert is_xml_char(char)

    def test_space_production(self):
        assert is_space(" ")
        assert is_space("\t")
        assert not is_space("x")

    def test_supplementary_plane_is_legal(self):
        assert is_xml_char("\U0001F600")

    def test_surrogate_gap_is_illegal(self):
        assert not is_xml_char("\ud800")


class TestWhitespaceNormalization:
    def test_collapse(self):
        assert collapse_whitespace("  a \t b\n c  ") == "a b c"

    def test_collapse_empty(self):
        assert collapse_whitespace(" \n\t ") == ""

    def test_replace_keeps_length(self):
        text = "a\tb\nc\rd"
        assert replace_whitespace(text) == "a b c d"
        assert len(replace_whitespace(text)) == len(text)

"""XML 1.0 §2.11 end-of-line handling, end to end.

The spec: before any other processing, a literal ``\\r\\n`` pair and a
bare ``\\r`` are both passed to the application as a single ``\\n``.
Characters that arrive via *character references* (``&#13;``) are not
touched — reference resolution happens after end-of-line handling in
the spec's processing model, so ``&#13;`` is the one way a carriage
return can reach (and survive in) parsed content.

Covered here: the fast scanner and the reference parser agree on a
CR/CRLF golden corpus; character data, CDATA, and attribute values all
normalize; ``Location``s keep pointing into the *pre*-normalization
source; the fused ingest route inherits the behaviour; and a serialize
round-trip emits ``\\r`` only as ``&#13;``.
"""

import pytest

from repro.core import bind
from repro.dom import parse_document
from repro.dom.serialize import serialize
from repro.ingest import fused_parse, legacy_parse
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.xml import parse_events
from repro.xml.events import Characters
from repro.xml.reference import reference_events

#: name -> (document, expected character data of the root element)
GOLDEN = {
    "crlf-pair": ("<a>x\r\ny</a>", "x\ny"),
    "bare-cr": ("<a>x\ry</a>", "x\ny"),
    "cr-then-crlf": ("<a>a\r\r\nb</a>", "a\n\nb"),
    "crlf-then-cr": ("<a>a\r\n\rb</a>", "a\n\nb"),
    "lone-cr-run": ("<a>\r\r\r</a>", "\n\n\n"),
    "trailing-cr": ("<a>tail\r</a>", "tail\n"),
    "leading-crlf": ("<a>\r\nbody</a>", "\nbody"),
    "cdata-crlf": ("<a><![CDATA[p\r\nq\r]]></a>", "p\nq\n"),
    "cdata-only-cr": ("<a><![CDATA[\r]]></a>", "\n"),
    "char-ref-cr-kept": ("<a>x&#13;y</a>", "x\ry"),
    "char-ref-hex-cr-kept": ("<a>x&#xD;y</a>", "x\ry"),
    "literal-cr-before-ref": ("<a>a\r&#10;b</a>", "a\n\nb"),
    "ref-cr-before-literal-lf": ("<a>a&#13;\nb</a>", "a\r\nb"),
    "mixed-everything": (
        "<a>one\r\ntwo\rthree&#13;four\nfive</a>",
        "one\ntwo\nthree\rfour\nfive",
    ),
}


def _text_of(events) -> str:
    return "".join(
        event.data for event in events if isinstance(event, Characters)
    )


class TestCharacterData:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_fast_parser_normalizes(self, name):
        document, expected = GOLDEN[name]
        assert _text_of(parse_events(document)) == expected

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_reference_parser_agrees_event_for_event(self, name):
        document, _ = GOLDEN[name]
        assert list(parse_events(document)) == list(
            reference_events(document)
        )

    def test_issue_repro(self):
        # The report that started this: a CRLF document's text events
        # leaked the raw "\r\n" to the application.
        events = list(parse_events("<a>x\r\ny</a>"))
        assert events[1].data == "x\ny"

    def test_locations_index_the_unnormalized_source(self):
        # "\r\n" collapses in the *event data* only; the source string
        # is untouched, so locations (and therefore error carets) keep
        # pointing at real offsets in what the user actually wrote.
        document = "<a>x\r\ny</a><oops"
        events = list(parse_events("<a>x\r\ny</a>"))
        text = events[1]
        assert document[text.location.offset] == "x"
        end = events[2]
        assert document[end.location.offset :].startswith("</a>")


class TestAttributeValues:
    # §2.11 runs before §3.3.3 attribute-value normalization, so a
    # literal "\r\n" is ONE line break -> one space.
    CASES = {
        '<a x="p\r\nq"/>': "p q",
        '<a x="p\rq"/>': "p q",
        '<a x="p\nq"/>': "p q",
        '<a x="p\r\r\nq"/>': "p  q",
        '<a x="p&#13;q"/>': "p\rq",
        '<a x="p&#13;&#10;q"/>': "p\r\nq",
    }

    @pytest.mark.parametrize("document", sorted(CASES))
    def test_value(self, document):
        start = list(parse_events(document))[0]
        assert dict(start.attributes)["x"] == self.CASES[document]

    @pytest.mark.parametrize("document", sorted(CASES))
    def test_parity(self, document):
        assert list(parse_events(document)) == list(
            reference_events(document)
        )


#: a purchase-order document written by a DOS-line-endings editor
CRLF_PURCHASE_ORDER = (
    '<purchaseOrder orderDate="1999-10-20">\r\n'
    "  <shipTo country=\"US\">\r\n"
    "    <name>Alice\r\nSmith</name>\r\n"
    "    <street>123 Maple Street</street>\r\n"
    "    <city>Mill Valley</city>\r\n"
    "    <state>CA</state>\r\n"
    "    <zip>90952</zip>\r\n"
    "  </shipTo>\r\n"
    "  <billTo country=\"US\">\r\n"
    "    <name>Robert Smith</name>\r\n"
    "    <street>8 Oak Avenue</street>\r\n"
    "    <city>Old Town</city>\r\n"
    "    <state>PA</state>\r\n"
    "    <zip>95819</zip>\r\n"
    "  </billTo>\r\n"
    "  <comment>Hurry, my lawn\ris going wild</comment>\r\n"
    "  <items>\r\n"
    '    <item partNum="872-AA">\r\n'
    "      <productName>Lawnmower</productName>\r\n"
    "      <quantity>1</quantity>\r\n"
    "      <USPrice>148.95</USPrice>\r\n"
    "    </item>\r\n"
    "  </items>\r\n"
    "</purchaseOrder>\r\n"
)


class TestIngestRoutes:
    @pytest.fixture(scope="class")
    def po_binding(self):
        return bind(PURCHASE_ORDER_SCHEMA)

    def test_fused_equals_legacy_on_crlf_document(self, po_binding):
        legacy = legacy_parse(po_binding, CRLF_PURCHASE_ORDER)
        fused = fused_parse(po_binding, CRLF_PURCHASE_ORDER)
        assert serialize(legacy) == serialize(fused)

    def test_typed_content_is_normalized(self, po_binding):
        root = fused_parse(po_binding, CRLF_PURCHASE_ORDER)
        assert root.ship_to.name.content == "Alice\nSmith"
        assert root.comment.content == "Hurry, my lawn\nis going wild"

    def test_unix_and_dos_sources_build_identical_trees(self, po_binding):
        unix = CRLF_PURCHASE_ORDER.replace("\r\n", "\n").replace("\r", "\n")
        assert serialize(fused_parse(po_binding, unix)) == serialize(
            fused_parse(po_binding, CRLF_PURCHASE_ORDER)
        )


class TestSerializeRoundTrip:
    def test_cr_survives_only_as_character_reference(self):
        document = '<a x="p&#13;q">t\r\nu&#13;v<![CDATA[w\r]]></a>'
        output = serialize(parse_document(document).document_element)
        assert "\r" not in output
        assert output == '<a x="p&#13;q">t\nu&#13;v<![CDATA[w\n]]></a>'

    def test_crlf_document_reserializes_stably(self):
        # After one normalizing parse the text is all-"\n"; a second
        # parse+serialize round trip is the identity.
        first = serialize(
            parse_document(CRLF_PURCHASE_ORDER).document_element
        )
        second = serialize(parse_document(first).document_element)
        assert "\r" not in first
        assert first == second

"""Golden parity: the fast scanner against the character-stepping oracle.

``repro.xml.parser`` rewrites the seed parser's hot loops around bulk
scanning (compiled regexes, ``str.find`` slices, interned names, lazy
line/column).  ``repro.xml.reference`` preserves the seed verbatim.  The
two must be indistinguishable: identical event streams (every field,
locations included) for well-formed input, identical exception type,
message, and location for ill-formed input.
"""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml import PullParser, parse_events
from repro.xml.reference import reference_events

WELL_FORMED = {
    "simple": "<a>hello</a>",
    "nested": "<a><b><c/></b>tail</a>",
    "empty-element": "<a/>",
    "attributes": '<a x="1" y="two" z=""/>',
    "single-quoted-attributes": "<a x='1' y='two'/>",
    "attribute-entities": '<a x="a&amp;b&lt;c&gt;d&quot;e&apos;f"/>',
    "attribute-char-refs": '<a x="&#65;&#x42;"/>',
    "attribute-whitespace-normalization": '<a x="a\tb\nc\rd"/>',
    "attribute-spacing": '<a   x  =  "1"   y="2"  />',
    "text-entities": "<a>&amp;&lt;&gt;&quot;&apos;</a>",
    "char-references": "<a>&#65;&#x41;&#x1F600;</a>",
    "cdata": "<a><![CDATA[<not> & markup ]]></a>",
    "cdata-with-brackets": "<a><![CDATA[a]]b]] >c]]></a>",
    "cdata-empty": "<a><![CDATA[]]></a>",
    "text-around-cdata": "<a>x<![CDATA[y]]>z</a>",
    "lone-brackets-in-text": "<a>a ] b ]] c &gt; d</a>",
    "comment": "<a><!-- a - b - single hyphens are fine --></a>",
    "comment-before-root": "<!-- prolog --><a/>",
    "comment-after-root": "<a/><!-- epilog -->",
    "processing-instruction": "<a><?target some data?></a>",
    "pi-no-data": "<a><?target?></a>",
    "xml-declaration": '<?xml version="1.0" encoding="UTF-8"?><a/>',
    "standalone": "<?xml version='1.0' standalone='yes'?><a/>",
    "doctype-system": '<!DOCTYPE a SYSTEM "a.dtd"><a/>',
    "doctype-internal-subset": "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>",
    "mixed-content": "<p>one <b>two</b> three <i>four</i> five</p>",
    "whitespace-runs": "<a>\n  <b>  spaced  </b>\n  \t\r\n</a>",
    "unicode-names": "<élément attributé=\"café\"/>",
    "unicode-text": "<a>日本語 \U0001f600</a>",
    "colon-names": '<ns:a ns:x="1"><ns:b/></ns:a>',
    "deep-attributes": '<a a1="1" a2="2" a3="3" a4="4" a5="5" a6="6"/>',
    "crlf-text": "<a>line1\r\nline2\rline3\nline4</a>",
}

ILL_FORMED = {
    "empty-document": "",
    "no-root": "   \n  ",
    "junk-before-root": "junk<a/>",
    "text-after-root": "<a/>tail",
    "second-root": "<a/><b/>",
    "unclosed-root": "<a>",
    "mismatched-end-tag": "<a></b>",
    "unterminated-start-tag": "<a",
    "unterminated-start-tag-after-attr": '<a x="1"',
    "unterminated-end-tag": "<a></a",
    "bad-name-start": "<1a/>",
    "bad-attr-no-value": "<a x/>",
    "bad-attr-no-quotes": "<a x=1/>",
    "unterminated-attr-value": '<a x="1/>',
    "duplicate-attribute": '<a x="1" x="2"/>',
    "attr-missing-space": '<a x="1"y="2"/>',
    "lt-in-attr-value": '<a x="<"/>',
    "bare-ampersand": "<a>a & b</a>",
    "unknown-entity": "<a>&nope;</a>",
    "unterminated-entity": "<a>&amp</a>",
    "bad-char-ref": "<a>&#x110000;</a>",
    "cdata-end-in-text": "<a>a ]]> b</a>",
    "unterminated-cdata": "<a><![CDATA[x</a>",
    "unterminated-comment": "<a><!-- x</a>",
    "double-hyphen-comment": "<a><!-- a -- b --></a>",
    "unterminated-pi": "<a><?pi x</a>",
    "pi-reserved-target": "<a><?xml x?></a>",
    "markup-decl-in-content": "<a><!ELEMENT a EMPTY></a>",
    "control-character": "<a>\x01</a>",
    "control-character-in-attr": '<a x="\x01"/>',
    "end-tag-only": "</a>",
    "doctype-after-root": "<a/><!DOCTYPE a>",
}


@pytest.mark.parametrize("name", sorted(WELL_FORMED))
def test_event_stream_identical(name):
    text = WELL_FORMED[name]
    fast = parse_events(text, source=f"{name}.xml")
    slow = reference_events(text, source=f"{name}.xml")
    assert len(fast) == len(slow)
    for fast_event, slow_event in zip(fast, slow):
        assert type(fast_event) is type(slow_event)
        assert fast_event == slow_event
        # Locations are excluded from dataclass equality — compare them
        # explicitly; lazy computation must not drift from the oracle.
        assert fast_event.location == slow_event.location


@pytest.mark.parametrize("name", sorted(ILL_FORMED))
def test_errors_identical(name):
    text = ILL_FORMED[name]
    with pytest.raises(XmlSyntaxError) as fast:
        parse_events(text, source=f"{name}.xml")
    with pytest.raises(XmlSyntaxError) as slow:
        reference_events(text, source=f"{name}.xml")
    assert type(fast.value) is type(slow.value)
    assert fast.value.message == slow.value.message
    assert fast.value.location == slow.value.location


def test_lazy_event_consumption():
    """The pull parser tokenizes on demand, not all at once."""
    text = "<a><b/><c/>" + "<unclosed>"  # error only at the very end
    events = iter(PullParser(text))
    assert next(events).name == "a"  # StartElement before the bad tail
    with pytest.raises(XmlSyntaxError):
        for _ in events:
            pass


def test_deeply_nested_document():
    """10,000-deep nesting parses without hitting the recursion limit."""
    depth = 10_000
    text = "".join(f"<e{i}>" for i in range(depth)) + "x" + "".join(
        f"</e{i}>" for i in reversed(range(depth))
    )
    opened = sum(
        1 for event in PullParser(text) if type(event).__name__ == "StartElement"
    )
    assert opened == depth


def test_interned_names():
    """Repeated tag names come back as the same string object."""
    events = parse_events("<a><b/><b/><b/></a>")
    names = [e.name for e in events if type(e).__name__ == "StartElement"]
    assert names[1] is names[2] is names[3]

"""Qualified names and namespace contexts."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml.qname import (
    NamespaceContext,
    QName,
    XML_NAMESPACE,
    XSD_NAMESPACE,
    split_qname,
)


class TestSplitQName:
    def test_unprefixed(self):
        assert split_qname("local") == (None, "local")

    def test_prefixed(self):
        assert split_qname("xsd:element") == ("xsd", "element")

    def test_bad_names(self):
        with pytest.raises(XmlSyntaxError):
            split_qname("a:b:c")
        with pytest.raises(XmlSyntaxError):
            split_qname(":x")
        with pytest.raises(XmlSyntaxError):
            split_qname("1x")


class TestQName:
    def test_clark_notation(self):
        qname = QName(XSD_NAMESPACE, "element", "xsd")
        assert qname.clark == "{http://www.w3.org/2001/XMLSchema}element"

    def test_clark_without_namespace(self):
        assert QName(None, "x").clark == "x"

    def test_str_uses_prefix(self):
        assert str(QName(XSD_NAMESPACE, "element", "xsd")) == "xsd:element"
        assert str(QName(None, "e")) == "e"


class TestNamespaceContext:
    def test_default_namespace(self):
        context = NamespaceContext()
        context.push((("xmlns", "http://example.com"),))
        assert context.resolve("a").namespace == "http://example.com"

    def test_prefixed_resolution(self):
        context = NamespaceContext()
        context.push((("xmlns:x", "http://x"),))
        qname = context.resolve("x:a")
        assert qname.namespace == "http://x"
        assert qname.local_name == "a"

    def test_attribute_ignores_default_namespace(self):
        context = NamespaceContext()
        context.push((("xmlns", "http://example.com"),))
        assert context.resolve("a", is_attribute=True).namespace is None

    def test_nested_rebinding_and_pop(self):
        context = NamespaceContext()
        context.push((("xmlns:x", "http://outer"),))
        context.push((("xmlns:x", "http://inner"),))
        assert context.resolve("x:a").namespace == "http://inner"
        context.pop()
        assert context.resolve("x:a").namespace == "http://outer"

    def test_xml_prefix_is_predeclared(self):
        context = NamespaceContext()
        context.push(())
        assert context.resolve("xml:lang").namespace == XML_NAMESPACE

    def test_undeclared_prefix_raises(self):
        context = NamespaceContext()
        context.push(())
        with pytest.raises(XmlSyntaxError):
            context.resolve("nope:a")

    def test_unbinding_prefix_rejected(self):
        context = NamespaceContext()
        with pytest.raises(XmlSyntaxError):
            context.push((("xmlns:x", ""),))

"""Store behavior: LRU bounds, atomicity, and corruption tolerance."""

import os

import pytest

from repro.errors import CacheError
from repro.cache.stats import CacheStats
from repro.cache.stores import (
    _MAGIC,
    DirectoryStore,
    MemoryStore,
    TieredStore,
)

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestMemoryStore:
    def test_roundtrip(self):
        store = MemoryStore()
        store.put(KEY, b"payload")
        assert store.get(KEY) == b"payload"

    def test_miss_is_none(self):
        assert MemoryStore().get(KEY) is None

    def test_lru_evicts_oldest(self):
        stats = CacheStats()
        store = MemoryStore(max_entries=2, stats=stats)
        store.put("k1", b"1")
        store.put("k2", b"2")
        store.put("k3", b"3")
        assert store.get("k1") is None
        assert store.get("k2") == b"2"
        assert store.get("k3") == b"3"
        assert stats.evictions == 1

    def test_get_refreshes_recency(self):
        store = MemoryStore(max_entries=2)
        store.put("k1", b"1")
        store.put("k2", b"2")
        store.get("k1")  # k1 is now the most recent
        store.put("k3", b"3")
        assert store.get("k1") == b"1"
        assert store.get("k2") is None

    def test_needs_at_least_one_slot(self):
        with pytest.raises(CacheError):
            MemoryStore(max_entries=0)

    def test_delete_and_clear(self):
        store = MemoryStore()
        store.put(KEY, b"x")
        assert store.delete(KEY) is True
        assert store.delete(KEY) is False
        store.put(KEY, b"x")
        store.put(OTHER, b"y")
        assert store.clear() == 2
        assert len(store) == 0


class TestDirectoryStore:
    def test_roundtrip(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        store.put(KEY, b"payload")
        assert store.get(KEY) == b"payload"

    def test_persists_across_instances(self, tmp_path):
        DirectoryStore(tmp_path / "cache").put(KEY, b"payload")
        assert DirectoryStore(tmp_path / "cache").get(KEY) == b"payload"

    def test_fan_out_layout(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        store.put(KEY, b"payload")
        assert (tmp_path / "cache" / KEY[:2] / f"{KEY}.bin").exists()

    def test_unwritable_root_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(CacheError):
            DirectoryStore(blocker / "cache")

    def test_no_temp_files_left_behind(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        for index in range(5):
            store.put(KEY, b"payload-%d" % index)
        leftovers = list((tmp_path / "cache").rglob("*.tmp"))
        assert leftovers == []

    def test_truncated_entry_is_a_miss(self, tmp_path):
        stats = CacheStats()
        store = DirectoryStore(tmp_path / "cache", stats=stats)
        store.put(KEY, b"payload")
        path = tmp_path / "cache" / KEY[:2] / f"{KEY}.bin"
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(KEY) is None
        assert stats.corrupt_entries == 1

    def test_bit_flip_is_a_miss(self, tmp_path):
        stats = CacheStats()
        store = DirectoryStore(tmp_path / "cache", stats=stats)
        store.put(KEY, b"payload")
        path = tmp_path / "cache" / KEY[:2] / f"{KEY}.bin"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get(KEY) is None
        assert stats.corrupt_entries == 1

    def test_foreign_file_is_a_miss(self, tmp_path):
        stats = CacheStats()
        store = DirectoryStore(tmp_path / "cache", stats=stats)
        path = tmp_path / "cache" / KEY[:2] / f"{KEY}.bin"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a cache entry at all")
        assert store.get(KEY) is None
        assert stats.corrupt_entries == 1

    def test_corrupt_entry_is_pruned(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        store.put(KEY, b"payload")
        path = tmp_path / "cache" / KEY[:2] / f"{KEY}.bin"
        path.write_bytes(b"garbage")
        store.get(KEY)
        assert not path.exists()

    def test_entry_format_is_checksummed(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        store.put(KEY, b"payload")
        raw = (tmp_path / "cache" / KEY[:2] / f"{KEY}.bin").read_bytes()
        assert raw.startswith(_MAGIC)
        assert raw.endswith(b"payload")

    def test_put_failure_is_silent(self, tmp_path, monkeypatch):
        store = DirectoryStore(tmp_path / "cache")

        def refuse(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", refuse)
        store.put(KEY, b"payload")  # must not raise
        assert store.get(KEY) is None

    def test_delete_and_clear(self, tmp_path):
        store = DirectoryStore(tmp_path / "cache")
        store.put(KEY, b"x")
        store.put(OTHER, b"y")
        assert len(store) == 2
        assert store.delete(KEY) is True
        assert store.delete(KEY) is False
        assert store.clear() == 1
        assert len(store) == 0


class TestTieredStore:
    def _tiered(self, tmp_path):
        memory = MemoryStore()
        disk = DirectoryStore(tmp_path / "cache")
        return memory, disk, TieredStore(memory, disk)

    def test_put_reaches_both_tiers(self, tmp_path):
        memory, disk, tiered = self._tiered(tmp_path)
        tiered.put(KEY, b"payload")
        assert memory.get(KEY) == b"payload"
        assert disk.get(KEY) == b"payload"

    def test_disk_hit_is_promoted_to_memory(self, tmp_path):
        memory, disk, tiered = self._tiered(tmp_path)
        disk.put(KEY, b"payload")
        assert memory.get(KEY) is None
        assert tiered.get(KEY) == b"payload"
        assert memory.get(KEY) == b"payload"

    def test_delete_covers_both_tiers(self, tmp_path):
        memory, disk, tiered = self._tiered(tmp_path)
        tiered.put(KEY, b"payload")
        assert tiered.delete(KEY) is True
        assert memory.get(KEY) is None
        assert disk.get(KEY) is None

"""Fingerprints: stable for identical inputs, different for anything else."""

from repro.cache.fingerprint import (
    CACHE_FORMAT_VERSION,
    combine,
    environment_tag,
    fingerprint,
)

SCHEMA_A = "<schema><element name='a'/></schema>"
SCHEMA_B = "<schema><element name='b'/></schema>"


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("binding", SCHEMA_A) == fingerprint(
            "binding", SCHEMA_A
        )

    def test_is_hex_sha256(self):
        key = fingerprint("binding", SCHEMA_A)
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_source_edit_changes_key(self):
        """The invalidation mechanism: a schema edit yields a new key,
        so the old artifact is simply never looked up again."""
        assert fingerprint("binding", SCHEMA_A) != fingerprint(
            "binding", SCHEMA_B
        )

    def test_single_character_edit_changes_key(self):
        assert fingerprint("binding", SCHEMA_A) != fingerprint(
            "binding", SCHEMA_A + " "
        )

    def test_kind_partitions_key_space(self):
        assert fingerprint("binding", SCHEMA_A) != fingerprint(
            "schema", SCHEMA_A
        )

    def test_options_change_key(self):
        plain = fingerprint("binding", SCHEMA_A)
        with_option = fingerprint(
            "binding", SCHEMA_A, choice_strategy="union"
        )
        other_option = fingerprint(
            "binding", SCHEMA_A, choice_strategy="inheritance"
        )
        assert len({plain, with_option, other_option}) == 3

    def test_option_order_is_irrelevant(self):
        assert fingerprint("t", "s", a="1", b="2") == fingerprint(
            "t", "s", b="2", a="1"
        )


class TestEnvironmentTag:
    def test_mentions_format_version(self):
        assert f"format={CACHE_FORMAT_VERSION}" in environment_tag()

    def test_mentions_interpreter(self):
        import sys

        tag = environment_tag()
        assert f"python={sys.version_info.major}.{sys.version_info.minor}" in tag

    def test_format_version_feeds_the_key(self, monkeypatch):
        # The module is shadowed by the function re-exported from
        # ``repro.cache``, so patch via sys.modules.
        import sys

        module = sys.modules["repro.cache.fingerprint"]
        before = fingerprint("binding", SCHEMA_A)
        monkeypatch.setattr(
            module, "CACHE_FORMAT_VERSION", CACHE_FORMAT_VERSION + 1
        )
        assert fingerprint("binding", SCHEMA_A) != before


class TestCombine:
    def test_chains_off_base(self):
        base_a = fingerprint("binding", SCHEMA_A)
        base_b = fingerprint("binding", SCHEMA_B)
        template = "<a>$x$</a>"
        assert combine(base_a, "template", template) != combine(
            base_b, "template", template
        )

    def test_same_base_same_source_is_stable(self):
        base = fingerprint("binding", SCHEMA_A)
        assert combine(base, "template", "<a/>") == combine(
            base, "template", "<a/>"
        )

    def test_differs_from_unchained(self):
        base = fingerprint("binding", SCHEMA_A)
        assert combine(base, "template", "<a/>") != fingerprint(
            "template", "<a/>"
        )

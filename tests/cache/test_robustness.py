"""Concurrency and cross-layer degradation: the cache never lies.

The paper's guarantee — a template that exists renders only valid XML —
must survive every cache failure mode: parallel writers, readers racing
a writer, truncated files, and stale downstream artifacts.
"""

import threading

import pytest

from repro.cache import ReproCache
from repro.cache.stores import DirectoryStore
from repro.errors import VdomTypeError
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.serverpages import ServerPage

KEY = "ab" + "0" * 62

SHIP_TO_TEMPLATE = (
    '<shipTo country="US"><name>$n$</name>'
    "<street>123 Maple Street</street><city>Mill Valley</city>"
    "<state>CA</state><zip>90952</zip></shipTo>"
)


class TestConcurrency:
    def test_readers_never_see_partial_writes(self, tmp_path):
        """Hammer one key with rewrites while readers poll: every
        observation must be a miss or a *complete* payload (the store
        publishes with ``os.replace`` and checksums on read)."""
        store = DirectoryStore(tmp_path / "cache")
        payload = b"x" * 64 * 1024
        observations: list[bytes] = []
        failures: list[str] = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                store.put(KEY, payload)

        def reader():
            while not stop.is_set():
                seen = store.get(KEY)
                if seen is not None:
                    if seen != payload:
                        failures.append(f"partial read of {len(seen)} bytes")
                    observations.append(seen[:1])

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        assert failures == []
        assert observations  # the race actually exercised reads

    def test_parallel_binds_share_one_artifact(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        bindings: list = []

        def bind():
            bindings.append(cache.bind(PURCHASE_ORDER_SCHEMA))

        threads = [threading.Thread(target=bind) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(bindings) == 8
        assert len(cache) == 1  # one key, however many racers
        for binding in bindings:
            binding.factory.create_name("works")


class TestTemplateCache:
    def _warm_pair(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        Template(binding, SHIP_TO_TEMPLATE, cache=cache)
        reopened = ReproCache(tmp_path / "cache")
        rebound = reopened.bind(PURCHASE_ORDER_SCHEMA)
        return reopened, rebound

    def test_warm_template_renders_identically(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        cold = Template(binding, SHIP_TO_TEMPLATE, cache=cache)
        reopened, rebound = self._warm_pair(tmp_path)
        warm = Template(rebound, SHIP_TO_TEMPLATE, cache=reopened)
        template_hits, _ = reopened.stats.by_kind["template"]
        assert template_hits == 1
        assert str(warm.render(n="Alice")) == str(cold.render(n="Alice"))

    def test_warm_template_still_enforces_types(self, tmp_path):
        """The static guarantee survives the cache: wrong hole values
        are rejected by the rebuilt render function."""
        reopened, rebound = self._warm_pair(tmp_path)
        warm = Template(rebound, SHIP_TO_TEMPLATE, cache=reopened)
        with pytest.raises(VdomTypeError):
            warm.render(n=rebound.factory.create_city("not a name"))

    def test_schema_edit_misses_template_cache(self, tmp_path):
        """Chained fingerprints: editing the schema changes the binding
        key, so the old template artifact is never even looked up."""
        reopened, _ = self._warm_pair(tmp_path)
        edited = PURCHASE_ORDER_SCHEMA.replace("comment", "remark")
        other_binding = reopened.bind(edited)
        Template(other_binding, SHIP_TO_TEMPLATE, cache=reopened)
        _, template_misses = reopened.stats.by_kind["template"]
        assert template_misses == 1

    def test_corrupt_template_artifact_recompiles(self, tmp_path):
        reopened, rebound = self._warm_pair(tmp_path)
        for path in (tmp_path / "cache").rglob("*.bin"):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 8])
        recompiled = Template(rebound, SHIP_TO_TEMPLATE, cache=reopened)
        element = recompiled.render(n="Alice")
        assert element.name.content == "Alice"
        assert reopened.stats.corrupt_entries >= 1

    def test_uncached_binding_skips_template_cache(self, tmp_path):
        """A binding without a fingerprint gives no stable identity to
        chain from; the template must compile (and work) uncached."""
        from repro.core import bind

        cache = ReproCache(tmp_path / "cache")
        plain = bind(PURCHASE_ORDER_SCHEMA)
        template = Template(plain, SHIP_TO_TEMPLATE, cache=cache)
        assert template.render(n="Alice").name.content == "Alice"
        assert cache.stats.by_kind.get("template") is None


class TestServerPageCache:
    PAGE = "<html><% for x in xs: %><p><%= x %></p><% end %></html>"

    def test_warm_page_renders_identically(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        cold = ServerPage(self.PAGE, cache=cache)
        reopened = ReproCache(tmp_path / "cache")
        warm = ServerPage(self.PAGE, cache=reopened)
        page_hits, _ = reopened.stats.by_kind["serverpage"]
        assert page_hits == 1
        assert warm.render(xs=[1, 2]) == cold.render(xs=[1, 2])
        assert warm.translated == cold.translated

    def test_corrupt_page_artifact_retranslates(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        ServerPage(self.PAGE, cache=cache)
        for path in (tmp_path / "cache").rglob("*.bin"):
            path.write_bytes(b"\xff\xfe garbage")
        reopened = ReproCache(tmp_path / "cache")
        page = ServerPage(self.PAGE, cache=reopened)
        assert page.render(xs=["ok"]) == "<html><p>ok</p></html>"

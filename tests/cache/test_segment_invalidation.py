"""Segment artifacts: warm loads, chained-key invalidation, corruption.

The render-to-text program rides in the template cache record.  Its key
chains the schema fingerprint with the template source, so editing
either one must miss the cache (never a stale fast path), and a warm
load must rebuild a ``render_text`` that still validates.
"""

import pathlib

import pytest

from repro.cache import ReproCache
from repro.cache.artifacts import (
    ArtifactError,
    dump_template,
    load_template,
)
from repro.dom import serialize
from repro.errors import VdomTypeError
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA

QUANTITY_SCHEMA_V1 = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="quantity">
    <xsd:simpleType>
      <xsd:restriction base="xsd:positiveInteger">
        <xsd:maxExclusive value="100"/>
      </xsd:restriction>
    </xsd:simpleType>
  </xsd:element>
</xsd:schema>
"""

#: Same element, tighter facet — a schema edit that MUST invalidate.
QUANTITY_SCHEMA_V2 = QUANTITY_SCHEMA_V1.replace('value="100"', 'value="10"')

TEMPLATE = "<quantity>$q$</quantity>"


def _cache_files(directory) -> set[pathlib.Path]:
    return {
        path
        for path in pathlib.Path(directory).rglob("*.bin")
        if path.is_file()
    }


class TestWarmLoad:
    def test_warm_template_rebuilds_fast_path(self, tmp_path):
        cold_cache = ReproCache.persistent(tmp_path)
        cold_binding = cold_cache.bind(PURCHASE_ORDER_SCHEMA)
        cold = Template(cold_binding, "<comment>$c$</comment>", cache=cold_cache)
        expected = cold.render_text(c="warm & cold")

        # A fresh manager over the same directory = a new process.
        warm_cache = ReproCache.persistent(tmp_path)
        warm_binding = warm_cache.bind(PURCHASE_ORDER_SCHEMA)
        warm = Template(warm_binding, "<comment>$c$</comment>", cache=warm_cache)
        assert warm.checked is None  # loaded, not re-checked
        assert warm._render_text is not None
        assert warm.text_source == cold.text_source
        assert warm.render_text(c="warm & cold") == expected
        assert warm.render_text(c="warm & cold") == serialize(
            warm.render(c="warm & cold")
        )

    def test_warm_fast_path_still_validates(self, tmp_path):
        cache = ReproCache.persistent(tmp_path)
        Template(cache.bind(QUANTITY_SCHEMA_V1), TEMPLATE, cache=cache)

        warm_cache = ReproCache.persistent(tmp_path)
        warm = Template(
            warm_cache.bind(QUANTITY_SCHEMA_V1), TEMPLATE, cache=warm_cache
        )
        assert warm.checked is None
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            warm.render_text(q=100)


class TestChainedKeyInvalidation:
    def test_template_source_edit_misses(self, tmp_path):
        cache = ReproCache.persistent(tmp_path)
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        Template(binding, "<comment>$c$</comment>", cache=cache)
        before = _cache_files(tmp_path)
        Template(binding, "<comment>edited $c$</comment>", cache=cache)
        after = _cache_files(tmp_path)
        assert len(after) == len(before) + 1  # new key, new entry
        # Re-creating the original is a pure hit: no new entry.
        Template(binding, "<comment>$c$</comment>", cache=cache)
        assert _cache_files(tmp_path) == after

    def test_schema_edit_misses_and_revalidates(self, tmp_path):
        cache = ReproCache.persistent(tmp_path)
        v1 = Template(cache.bind(QUANTITY_SCHEMA_V1), TEMPLATE, cache=cache)
        assert v1.render_text(q=50) == "<quantity>50</quantity>"

        # Same template source, edited schema: the chained key changes,
        # so the V1 segment program cannot be (wrongly) reused.
        v2 = Template(cache.bind(QUANTITY_SCHEMA_V2), TEMPLATE, cache=cache)
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            v2.render_text(q=50)

        # And warm loads of each keep their own schema's constraint.
        warm_cache = ReproCache.persistent(tmp_path)
        warm_v1 = Template(
            warm_cache.bind(QUANTITY_SCHEMA_V1), TEMPLATE, cache=warm_cache
        )
        warm_v2 = Template(
            warm_cache.bind(QUANTITY_SCHEMA_V2), TEMPLATE, cache=warm_cache
        )
        assert warm_v1.render_text(q=50) == "<quantity>50</quantity>"
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            warm_v2.render_text(q=50)


class TestCorruptionRecovery:
    def test_bit_rot_recompiles(self, tmp_path):
        cache = ReproCache.persistent(tmp_path)
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        cold = Template(binding, "<comment>$c$</comment>", cache=cache)
        expected = cold.render_text(c="x")

        # Corrupt every stored entry (checksums break → the store drops
        # them → a clean recompile, not a crash or a half-loaded record).
        for path in _cache_files(tmp_path):
            path.write_bytes(b"garbage" + path.read_bytes()[:16])

        warm_cache = ReproCache.persistent(tmp_path)
        warm_binding = warm_cache.bind(PURCHASE_ORDER_SCHEMA)
        warm = Template(
            warm_binding, "<comment>$c$</comment>", cache=warm_cache
        )
        assert warm.checked is not None  # recompiled from source
        assert warm.render_text(c="x") == expected
        assert warm_cache.stats.corrupt_entries > 0

    def test_stale_segment_record_raises_artifact_error(self, tmp_path):
        cache = ReproCache.persistent(tmp_path)
        po_binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        template = Template(po_binding, "<comment>$c$</comment>", cache=cache)
        payload = dump_template(
            po_binding,
            template.generated_source,
            "comment",
            {},
            text_source=template.text_source,
            segment_program=template._segments,
        )
        # Loading against a binding from a different schema: the run
        # owners don't resolve, and the loader refuses the fast path.
        other_binding = cache.bind(QUANTITY_SCHEMA_V1)
        with pytest.raises(ArtifactError, match="stale"):
            load_template(payload, other_binding)

"""``ReproCache`` end to end: bind, schema, text, stats, degradation."""

import os

import pytest

from repro.cache import ReproCache
from repro.cache.manager import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.errors import CacheError, VdomTypeError
from repro.schemas import PURCHASE_ORDER_SCHEMA

EDITED_SCHEMA = PURCHASE_ORDER_SCHEMA.replace("comment", "remark")


def _exercise(binding):
    """The binding must enforce the schema regardless of how it loaded."""
    factory = binding.factory
    ship_to = factory.create_ship_to(
        factory.create_name("Alice Smith"),
        factory.create_street("123 Maple Street"),
        factory.create_city("Mill Valley"),
        factory.create_state("CA"),
        factory.create_zip("90952"),
        country="US",
    )
    assert ship_to.name.content == "Alice Smith"
    with pytest.raises(VdomTypeError):
        factory.create_ship_to(factory.create_name("nobody else"))
    return ship_to


class TestBind:
    def test_cold_bind_works_and_stores(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        _exercise(binding)
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert len(cache) == 1

    def test_same_process_repeat_returns_same_object(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        first = cache.bind(PURCHASE_ORDER_SCHEMA)
        second = cache.bind(PURCHASE_ORDER_SCHEMA)
        assert second is first
        assert cache.stats.hits == 1

    def test_warm_start_from_disk(self, tmp_path):
        ReproCache(tmp_path / "cache").bind(PURCHASE_ORDER_SCHEMA)
        reopened = ReproCache(tmp_path / "cache")
        binding = reopened.bind(PURCHASE_ORDER_SCHEMA)
        _exercise(binding)
        assert reopened.stats.hits == 1
        assert reopened.stats.misses == 0

    def test_warm_binding_is_fingerprinted(self, tmp_path):
        cold = ReproCache(tmp_path / "cache").bind(PURCHASE_ORDER_SCHEMA)
        warm = ReproCache(tmp_path / "cache").bind(PURCHASE_ORDER_SCHEMA)
        assert cold.cache_fingerprint == warm.cache_fingerprint

    def test_schema_edit_invalidates(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        original = cache.bind(PURCHASE_ORDER_SCHEMA)
        edited = cache.bind(EDITED_SCHEMA)
        assert edited is not original
        assert edited.cache_fingerprint != original.cache_fingerprint
        assert len(cache) == 2  # both artifacts coexist under their keys
        assert hasattr(edited.factory, "create_remark")
        assert hasattr(original.factory, "create_comment")

    def test_options_partition_the_cache(self, tmp_path):
        from repro.core.generate import ChoiceStrategy

        cache = ReproCache(tmp_path / "cache")
        inheritance = cache.bind(PURCHASE_ORDER_SCHEMA)
        union = cache.bind(
            PURCHASE_ORDER_SCHEMA, choice_strategy=ChoiceStrategy.UNION
        )
        assert union is not inheritance
        assert union.cache_fingerprint != inheritance.cache_fingerprint

    def test_corrupted_entry_recompiles_silently(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        cache.bind(PURCHASE_ORDER_SCHEMA)
        for path in (tmp_path / "cache").rglob("*.bin"):
            path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        reopened = ReproCache(tmp_path / "cache")
        binding = reopened.bind(PURCHASE_ORDER_SCHEMA)  # must not raise
        _exercise(binding)
        assert reopened.stats.corrupt_entries >= 1

    def test_valid_container_wrong_pickle_recompiles(self, tmp_path):
        """A checksummed entry whose *payload* is junk also degrades."""
        cache = ReproCache(tmp_path / "cache")
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        key = binding.cache_fingerprint
        cache.put_bytes("binding", key, b"this is not a pickle")
        reopened = ReproCache(tmp_path / "cache")
        _exercise(reopened.bind(PURCHASE_ORDER_SCHEMA))
        assert reopened.stats.corrupt_entries == 1

    def test_binding_lru_is_bounded(self, tmp_path):
        cache = ReproCache(tmp_path / "cache", binding_entries=1)
        first = cache.bind(PURCHASE_ORDER_SCHEMA)
        cache.bind(EDITED_SCHEMA)  # evicts the live object for `first`
        again = cache.bind(PURCHASE_ORDER_SCHEMA)
        assert again is not first  # reloaded from bytes, not the LRU
        assert cache.stats.evictions >= 1

    def test_memory_only_cache_works(self):
        cache = ReproCache()
        _exercise(cache.bind(PURCHASE_ORDER_SCHEMA))
        assert cache.bind(PURCHASE_ORDER_SCHEMA) is not None


class TestSchema:
    def test_cached_schema_parses_once(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        schema = cache.schema(PURCHASE_ORDER_SCHEMA)
        assert "purchaseOrder" in schema.elements
        reopened = ReproCache(tmp_path / "cache")
        warm = reopened.schema(PURCHASE_ORDER_SCHEMA)
        assert "purchaseOrder" in warm.elements
        assert reopened.stats.hits == 1

    def test_warm_schema_validates(self, tmp_path):
        from repro.dom import parse_document
        from repro.xsd import SchemaValidator

        ReproCache(tmp_path / "cache").schema(PURCHASE_ORDER_SCHEMA)
        schema = ReproCache(tmp_path / "cache").schema(PURCHASE_ORDER_SCHEMA)
        document = parse_document(
            "<purchaseOrder><badChild/></purchaseOrder>"
        )
        assert SchemaValidator(schema).validate(document) != []


class TestTextArtifacts:
    def test_roundtrip(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        cache.put_text("serverpage", "k" * 64, "translated source")
        assert cache.get_text("serverpage", "k" * 64) == "translated source"

    def test_miss_returns_none(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        assert cache.get_text("serverpage", "k" * 64) is None
        assert cache.stats.misses == 1


class TestHousekeeping:
    def test_invalidate(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)
        assert cache.invalidate(binding.cache_fingerprint) is True
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_clear(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        cache.bind(PURCHASE_ORDER_SCHEMA)
        cache.bind(EDITED_SCHEMA)
        assert cache.clear() == 2
        assert len(cache) == 0
        # Live objects are dropped too: the next bind recompiles.
        cache.bind(PURCHASE_ORDER_SCHEMA)
        assert cache.stats.misses == 3

    def test_stats_report(self, tmp_path):
        cache = ReproCache(tmp_path / "cache")
        cache.bind(PURCHASE_ORDER_SCHEMA)
        report = cache.stats.as_dict()
        assert report["misses"] == 1
        assert report["stores"] == 1
        assert report["by_kind"]["binding"] == {"hits": 0, "misses": 1}

    def test_persistent_honors_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "from-env"))
        cache = ReproCache.persistent()
        assert cache.directory == str(tmp_path / "from-env")

    def test_persistent_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        cache = ReproCache.persistent()
        assert cache.directory == DEFAULT_CACHE_DIR
        assert os.path.isdir(tmp_path / DEFAULT_CACHE_DIR)

    def test_unwritable_directory_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        with pytest.raises(CacheError):
            ReproCache(blocker / "cache")

"""Cache format versioning: entries written by an older format are never
served — the fingerprint changes, so a v5 reader simply recompiles past
a directory full of v4 artifacts."""

import importlib

from repro.cache.fingerprint import CACHE_FORMAT_VERSION, fingerprint

fingerprint_module = importlib.import_module("repro.cache.fingerprint")
from repro.cache.manager import ReproCache

SCHEMA = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="root">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="item" type="xsd:string" maxOccurs="unbounded"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>
"""


def test_format_version_is_five():
    assert CACHE_FORMAT_VERSION == 5


def test_fingerprint_changes_with_format_version(monkeypatch):
    before = fingerprint("binding", SCHEMA)
    monkeypatch.setattr(fingerprint_module, "CACHE_FORMAT_VERSION", 4)
    assert fingerprint("binding", SCHEMA) != before


def test_v4_entries_are_invisible_to_a_v5_reader(tmp_path, monkeypatch):
    """A directory populated by a v4 writer neither satisfies nor breaks
    a v5 reader: the stale entry is never looked up, the binding is
    recompiled, and a second v5 cache then starts warm."""
    with monkeypatch.context() as patch:
        patch.setattr(fingerprint_module, "CACHE_FORMAT_VERSION", 4)
        stale_writer = ReproCache(tmp_path)
        stale_writer.bind(SCHEMA)
        assert stale_writer.stats.stores >= 1

    fresh = ReproCache(tmp_path)
    binding = fresh.bind(SCHEMA)
    assert fresh.stats.misses >= 1
    root = binding.factory.create_root(binding.factory.create_item("x"))
    assert root.item_list[0].content == "x"

    warm = ReproCache(tmp_path)
    warm.bind(SCHEMA)
    assert warm.stats.misses == 0
    assert warm.stats.hits >= 1


def test_lazy_roots_key_separate_entries(tmp_path):
    cache = ReproCache(tmp_path)
    full = cache.bind(SCHEMA)
    lazy = cache.bind(SCHEMA, lazy_roots=("root",))
    assert full is not lazy
    assert lazy.schema.subset_roots == ("root",)
    assert full.schema.subset_roots == ()

    # Each variant round-trips from disk under its own key.
    rewarmed = ReproCache(tmp_path)
    assert rewarmed.bind(SCHEMA, lazy_roots=("root",)).schema.subset_roots == (
        "root",
    )
    assert rewarmed.stats.misses == 0

"""Naming schemes for anonymous groups (paper Sect. 3)."""


from repro.xsd.components import (
    Compositor,
    ElementDeclaration,
    ModelGroup,
    Particle,
)
from repro.automata.rex import UNBOUNDED
from repro.core.naming import (
    ExplicitFirstNaming,
    InheritedNaming,
    MergedNaming,
    SynthesizedNaming,
    particle_label,
    type_name_for_element,
)


def choice_of(*names):
    return ModelGroup(
        Compositor.CHOICE,
        [Particle(ElementDeclaration(name)) for name in names],
    )


def sequence_of(*names):
    return ModelGroup(
        Compositor.SEQUENCE,
        [Particle(ElementDeclaration(name)) for name in names],
    )


class TestSynthesizedNaming:
    def test_choice_uses_or(self):
        """The paper's example: singAddr | twoAddr → singAddrORtwoAddr."""
        scheme = SynthesizedNaming()
        group = choice_of("singAddr", "twoAddr")
        assert scheme.group_name(group, "PurchaseOrderTypeC", 1) == (
            "singAddrORtwoAddr"
        )

    def test_adding_alternative_changes_the_name(self):
        """The instability the paper criticizes."""
        scheme = SynthesizedNaming()
        before = scheme.group_name(choice_of("singAddr", "twoAddr"), "X", 1)
        after = scheme.group_name(
            choice_of("singAddr", "twoAddr", "multAddr"), "X", 1
        )
        assert before != after
        assert after == "singAddrORtwoAddrORmultAddr"

    def test_sequence_uses_and(self):
        scheme = SynthesizedNaming()
        assert scheme.group_name(sequence_of("a", "b"), "X", 1) == "aANDb"

    def test_list_particles_get_list_suffix(self):
        particle = Particle(ElementDeclaration("item"), 0, UNBOUNDED)
        assert particle_label(particle) == "itemList"


class TestInheritedNaming:
    def test_positional_names(self):
        """PurchaseOrderTypeC's first child is PurchaseOrderTypeCC1."""
        scheme = InheritedNaming()
        group = choice_of("singAddr", "twoAddr")
        assert scheme.group_name(group, "PurchaseOrderTypeC", 1) == (
            "PurchaseOrderTypeCC1"
        )

    def test_stable_under_alternative_addition(self):
        """The property the paper adopts inherited naming for."""
        scheme = InheritedNaming()
        before = scheme.group_name(choice_of("a", "b"), "TC", 1)
        after = scheme.group_name(choice_of("a", "b", "c"), "TC", 1)
        assert before == after

    def test_depends_on_position(self):
        scheme = InheritedNaming()
        group = choice_of("a", "b")
        assert scheme.group_name(group, "TC", 1) != scheme.group_name(
            group, "TC", 2
        )


class TestMergedNaming:
    def test_choice_gets_inherited_name(self):
        scheme = MergedNaming()
        assert scheme.group_name(
            choice_of("singAddr", "twoAddr"), "PurchaseOrderTypeC", 1
        ) == "PurchaseOrderTypeCC1"

    def test_sequence_gets_synthesized_name(self):
        scheme = MergedNaming()
        assert scheme.group_name(sequence_of("a", "b"), "TC", 2) == "aANDb"


class TestExplicitFirstNaming:
    def test_explicit_name_wins(self):
        scheme = ExplicitFirstNaming()
        group = choice_of("a", "b")
        group.name = "AddressGroup"
        assert scheme.group_name(group, "TC", 1) == "AddressGroup"

    def test_fallback_to_merged(self):
        scheme = ExplicitFirstNaming()
        assert scheme.group_name(choice_of("a", "b"), "TC", 1) == "TCC1"


class TestTypeNames:
    def test_short_form(self):
        assert type_name_for_element("item", None) == "ItemType"

    def test_qualified_form(self):
        assert type_name_for_element("item", "Items") == "ItemsItemType"

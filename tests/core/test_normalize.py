"""Schema normal form (paper Sect. 3, rules 1-3)."""


from repro.xsd import parse_schema
from repro.core.naming import InheritedNaming, SynthesizedNaming
from repro.core.normalize import is_normal_form, normalize
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.variants import (
    NAMED_GROUP_SCHEMA,
    PURCHASE_ORDER_CHOICE3_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
)


class TestNormalForm:
    def test_purchase_order_schema_normalizes(self):
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        assert not is_normal_form(schema)  # anonymous item type
        normalize(schema)
        assert is_normal_form(schema)

    def test_anonymous_types_get_names(self):
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        result = normalize(schema)
        assert result.generated_type_names == {
            "item": "ItemType",
            "quantity": "QuantityType",
        }
        assert "ItemType" in schema.types
        assert "QuantityType" in schema.types

    def test_element_declarations_point_at_named_types(self):
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        normalize(schema)
        items = schema.types["Items"].content.term
        item = items.particles[0].term
        assert item.type_definition.name == "ItemType"

    def test_nested_choice_becomes_named_group(self):
        schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
        result = normalize(schema)
        assert result.generated_group_names == ["PurchaseOrderTypeCC1"]
        group = schema.groups["PurchaseOrderTypeCC1"]
        assert [p.term.name for p in group.model_group.particles] == [
            "singAddr",
            "twoAddr",
        ]

    def test_normalization_is_idempotent(self):
        schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
        normalize(schema)
        second = normalize(schema)
        assert second.generated_group_names == []
        assert is_normal_form(schema)

    def test_explicit_group_untouched(self):
        schema = parse_schema(NAMED_GROUP_SCHEMA)
        result = normalize(schema)
        assert "AddressGroup" in schema.groups
        assert result.generated_group_names == []

    def test_validation_unaffected_by_normalization(self):
        from repro.dom import parse_document
        from repro.xsd import validate
        from repro.schemas import PURCHASE_ORDER_DOCUMENT

        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        normalize(schema)
        assert validate(parse_document(PURCHASE_ORDER_DOCUMENT), schema) == []


class TestNamingStability:
    """CLAIM-3: which generated names survive the evolution step."""

    def _group_names(self, schema_text, naming):
        schema = parse_schema(schema_text)
        return set(normalize(schema, naming).generated_group_names)

    def test_inherited_names_survive_choice_extension(self):
        before = self._group_names(
            PURCHASE_ORDER_CHOICE_SCHEMA, InheritedNaming()
        )
        after = self._group_names(
            PURCHASE_ORDER_CHOICE3_SCHEMA, InheritedNaming()
        )
        assert before == after == {"PurchaseOrderTypeCC1"}

    def test_synthesized_names_break_on_choice_extension(self):
        before = self._group_names(
            PURCHASE_ORDER_CHOICE_SCHEMA, SynthesizedNaming()
        )
        after = self._group_names(
            PURCHASE_ORDER_CHOICE3_SCHEMA, SynthesizedNaming()
        )
        assert before == {"singAddrORtwoAddr"}
        assert after == {"singAddrORtwoAddrORmultAddr"}
        assert not before & after

    def test_merged_default_behaves_like_inherited_for_choice(self):
        before = self._group_names(PURCHASE_ORDER_CHOICE_SCHEMA, None)
        after = self._group_names(PURCHASE_ORDER_CHOICE3_SCHEMA, None)
        assert before == after

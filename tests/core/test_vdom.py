"""The V-DOM runtime: typed construction, enforcement, rollback."""

import datetime
import decimal

import pytest

from repro.core import bind
from repro.core.vdom import TypedElement, VdomGroup, snake_case
from repro.dom import Element, serialize
from repro.errors import VdomStateError, VdomTypeError
from repro.xsd import SchemaValidator
from repro.schemas import PURCHASE_ORDER_SCHEMA


class TestSnakeCase:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("purchaseOrder", "purchase_order"),
            ("USPrice", "us_price"),
            ("shipTo", "ship_to"),
            ("partNum", "part_num"),
            ("a", "a"),
            ("class", "class_"),
        ],
    )
    def test_conversion(self, name, expected):
        assert snake_case(name) == expected


class TestTypedConstruction:
    def test_classes_extend_dom_element(self, po_binding):
        """The paper's core requirement: interfaces extend DOM Element."""
        cls = po_binding.element_class("purchaseOrder")
        assert issubclass(cls, TypedElement)
        assert issubclass(cls, Element)

    def test_simple_element_from_string(self, po_factory):
        name = po_factory.create_name("Alice")
        assert name.tag_name == "name"
        assert name.content == "Alice"

    def test_simple_element_from_python_value(self, po_factory):
        quantity = po_factory.create_quantity(5)
        assert quantity.value == 5
        zip_element = po_factory.create_zip(decimal.Decimal("90952"))
        assert zip_element.value == decimal.Decimal("90952")

    def test_attribute_from_python_value(self, po_factory, full_po):
        assert full_po.order_date == datetime.date(1999, 10, 20)

    def test_fixed_attribute_auto_filled(self, po_factory):
        ship_to = po_factory.create_ship_to(
            po_factory.create_name("x"),
            po_factory.create_street("x"),
            po_factory.create_city("x"),
            po_factory.create_state("x"),
            po_factory.create_zip("1"),
        )
        assert ship_to.get_attribute("country") == "US"

    def test_full_document_serializes_valid(self, po_binding, full_po):
        document = po_binding.document(full_po)
        validator = SchemaValidator(po_binding.schema)
        assert validator.validate(document) == []

    def test_serialization_roundtrip(self, po_binding, full_po):
        from repro.dom import parse_document

        text = serialize(po_binding.document(full_po))
        reparsed = parse_document(text)
        assert SchemaValidator(po_binding.schema).validate(reparsed) == []

    def test_none_children_skipped(self, po_factory):
        item = po_factory.create_item(
            po_factory.create_product_name("x"),
            po_factory.create_quantity(1),
            po_factory.create_us_price("1.0"),
            None,  # the optional comment is simply absent
            part_num="123-AB",
        )
        assert len(item.child_elements()) == 3

    def test_iterable_children_flattened(self, po_factory):
        items = po_factory.create_items(
            [
                po_factory.create_item(
                    po_factory.create_product_name("x"),
                    po_factory.create_quantity(1),
                    po_factory.create_us_price("1.0"),
                    part_num="123-AB",
                )
                for __ in range(3)
            ]
        )
        assert len(items.item_list) == 3


class TestConstructionRejections:
    def test_wrong_child_order(self, po_factory):
        with pytest.raises(VdomTypeError, match="expected <name>"):
            po_factory.create_ship_to(
                po_factory.create_street("s"),
                po_factory.create_name("n"),
                po_factory.create_city("c"),
                po_factory.create_state("st"),
                po_factory.create_zip("1"),
            )

    def test_incomplete_content(self, po_factory):
        with pytest.raises(VdomTypeError, match="incomplete"):
            po_factory.create_ship_to(po_factory.create_name("n"))

    def test_facet_violation(self, po_factory):
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            po_factory.create_quantity(100)

    def test_pattern_violation_on_attribute(self, po_factory):
        with pytest.raises(VdomTypeError, match="pattern"):
            po_factory.create_item(
                po_factory.create_product_name("x"),
                po_factory.create_quantity(1),
                po_factory.create_us_price("1.0"),
                part_num="no-good",
            )

    def test_missing_required_attribute(self, po_factory):
        with pytest.raises(VdomTypeError, match="required attribute"):
            po_factory.create_item(
                po_factory.create_product_name("x"),
                po_factory.create_quantity(1),
                po_factory.create_us_price("1.0"),
            )

    def test_undeclared_attribute(self, po_factory):
        with pytest.raises(VdomTypeError, match="no attribute"):
            po_factory.create_comment("x", color="red")

    def test_fixed_attribute_conflict(self, po_factory):
        with pytest.raises(VdomTypeError, match="fixed"):
            po_factory.create_ship_to(
                po_factory.create_name("n"),
                po_factory.create_street("s"),
                po_factory.create_city("c"),
                po_factory.create_state("st"),
                po_factory.create_zip("1"),
                country="DE",
            )

    def test_untyped_dom_element_rejected(self, po_factory, po_binding):
        from repro.dom import Document

        plain = Document().create_element("name")
        with pytest.raises(VdomTypeError, match="typed"):
            po_factory.create_ship_to(plain)

    def test_text_in_element_only_content(self, po_factory):
        with pytest.raises(VdomTypeError):
            po_factory.create_items("loose text")

    def test_child_from_wrong_declaration(self, po_binding, wml_binding):
        """A 'name'-named element from another schema is rejected."""
        foreign_binding = bind(PURCHASE_ORDER_SCHEMA)
        foreign_name = foreign_binding.factory.create_name("evil")
        f = po_binding.factory
        with pytest.raises(VdomTypeError, match="different declaration"):
            f.create_ship_to(
                foreign_name,
                f.create_street("s"),
                f.create_city("c"),
                f.create_state("st"),
                f.create_zip("1"),
            )


class TestMutation:
    def test_add_returns_self_for_chaining(self, po_factory):
        items = po_factory.create_items()
        item = po_factory.create_item(
            po_factory.create_product_name("x"),
            po_factory.create_quantity(1),
            po_factory.create_us_price("1.0"),
            part_num="123-AB",
        )
        assert items.add(item) is items
        assert len(items.item_list) == 1

    def test_invalid_add_rolls_back(self, po_factory):
        items = po_factory.create_items()
        with pytest.raises(VdomTypeError):
            items.add(po_factory.create_comment("wrong"))
        assert len(items.child_elements()) == 0

    def test_invalid_attribute_set_rolls_back(self, full_po):
        with pytest.raises(VdomTypeError):
            full_po.set_attribute("orderDate", "not a date")
        assert full_po.get_attribute("orderDate") == "1999-10-20"

    def test_remove_required_child_rolls_back(self, full_po):
        ship_to = full_po.ship_to
        with pytest.raises(VdomTypeError):
            full_po.remove_child(ship_to)
        assert full_po.ship_to is ship_to

    def test_remove_optional_child_succeeds(self, full_po):
        comment = full_po.comment
        assert comment is not None
        full_po.remove_child(comment)
        assert full_po.comment is None

    def test_replace_child_checked(self, po_factory, full_po):
        new_ship_to = po_factory.create_ship_to(
            po_factory.create_name("New"),
            po_factory.create_street("s"),
            po_factory.create_city("c"),
            po_factory.create_state("st"),
            po_factory.create_zip("2"),
        )
        full_po.replace_child(new_ship_to, full_po.ship_to)
        assert full_po.ship_to.name.content == "New"

    def test_property_setter_replaces(self, po_factory, full_po):
        full_po.comment = po_factory.create_comment("updated")
        assert full_po.comment.content == "updated"

    def test_attribute_property_setter(self, full_po):
        full_po.order_date = datetime.date(2000, 1, 1)
        assert full_po.get_attribute("orderDate") == "2000-01-01"

    def test_attribute_property_delete_via_none(self, full_po):
        full_po.order_date = None
        assert not full_po.has_attribute("orderDate")
        full_po.order_date = "1999-10-20"


class TestAdoptionSafety:
    """Re-parenting must not invalidate the source tree either."""

    def test_stealing_required_child_rejected(self, po_factory, full_po):
        ship_to = full_po.ship_to
        other_items = po_factory.create_items()
        # shipTo is not allowed in items anyway; use a fresh purchase
        # order slot to attempt the theft:
        with pytest.raises(VdomTypeError, match="would invalidate"):
            po_factory.create_purchase_order(
                ship_to,  # stolen from full_po!
                po_factory.create_bill_to(
                    po_factory.create_name("n"),
                    po_factory.create_street("s"),
                    po_factory.create_city("c"),
                    po_factory.create_state("st"),
                    po_factory.create_zip("1"),
                ),
                other_items,
            )
        # The source tree kept its shipTo and stays valid.
        assert full_po.ship_to is ship_to
        full_po.check_valid_deep()

    def test_stealing_optional_child_allowed(self, po_factory, full_po):
        comment = full_po.comment
        items = full_po.items.item_list
        item_without_comment = items[1]
        # The item's content model is ...USPrice, comment?, shipDate? —
        # the moved comment must land before the shipDate.
        item_without_comment.insert_before(
            comment, item_without_comment.ship_date
        )
        assert full_po.comment is None
        assert item_without_comment.comment is comment
        full_po.check_valid_deep()

    def test_deferred_binding_allows_theft(self):
        binding = bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)
        factory = binding.factory
        ship_to = factory.create_ship_to(
            factory.create_name("n"), factory.create_street("s"),
            factory.create_city("c"), factory.create_state("st"),
            factory.create_zip("1"),
        )
        po = factory.create_purchase_order(ship_to)
        second = factory.create_purchase_order(ship_to)
        assert ship_to.parent_node is second
        with pytest.raises(VdomTypeError):
            po.check_valid()  # deferred check still finds the hole


class TestTypedAccess:
    def test_child_properties(self, full_po):
        assert full_po.ship_to.tag_name == "shipTo"
        assert full_po.items.tag_name == "items"
        assert full_po.ship_to.name.content == "Alice Smith"

    def test_list_property(self, full_po):
        items = full_po.items.item_list
        assert [item.product_name.content for item in items] == [
            "Lawnmower",
            "Baby Monitor",
        ]

    def test_typed_attribute_values(self, full_po):
        item = full_po.items.item_list[0]
        assert item.part_num == "872-AA"
        assert item.us_price.value == decimal.Decimal("148.95")
        assert item.quantity.value == 1

    def test_value_on_complex_element_raises(self, full_po):
        with pytest.raises(VdomStateError):
            full_po.items.value

    def test_deep_check(self, full_po):
        full_po.check_valid_deep()


class TestAttributeDefaults:
    SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="widget" type="WidgetType"/>
  <xsd:complexType name="WidgetType">
    <xsd:sequence/>
    <xsd:attribute name="color" type="xsd:string" default="blue"/>
    <xsd:attribute name="size" type="xsd:int"/>
  </xsd:complexType>
</xsd:schema>
"""

    def test_default_auto_filled(self):
        binding = bind(self.SCHEMA)
        widget = binding.factory.create_widget()
        assert widget.get_attribute("color") == "blue"

    def test_default_overridable(self):
        binding = bind(self.SCHEMA)
        widget = binding.factory.create_widget(color="red")
        assert widget.get_attribute("color") == "red"

    def test_xml_name_accepted_as_kwarg(self, po_factory):
        item = po_factory.create_item(
            po_factory.create_product_name("x"),
            po_factory.create_quantity(1),
            po_factory.create_us_price("1.0"),
            partNum="123-AB",  # XML name instead of part_num
        )
        assert item.part_num == "123-AB"

    def test_optional_typed_attribute(self):
        binding = bind(self.SCHEMA)
        widget = binding.factory.create_widget(size=5)
        assert widget.size == 5
        bare = binding.factory.create_widget()
        assert bare.size is None


class TestBindingLookups:
    def test_element_class_lookup(self, po_binding):
        assert po_binding.element_class("comment").__name__ == "CommentElement"

    def test_unknown_element_class(self, po_binding):
        with pytest.raises(VdomStateError):
            po_binding.element_class("ghost")

    def test_class_named(self, po_binding):
        cls = po_binding.class_named("PurchaseOrderElement")
        assert cls is po_binding.element_class("purchaseOrder")

    def test_document_requires_global_root(self, po_binding, po_factory):
        with pytest.raises(VdomTypeError):
            po_binding.document(po_factory.create_name("local"))

    def test_factory_names_are_stable(self, po_binding):
        assert "create_purchase_order" in po_binding.factory_names()
        assert "create_us_price" in po_binding.factory_names()

    def test_binding_idl_convenience(self, po_binding):
        idl = po_binding.idl()
        assert "interface purchaseOrderElement {" in idl


class TestChoiceGroups:
    def test_marker_class_isinstance(self, choice_binding):
        factory = choice_binding.factory
        sing = factory.create_sing_addr(
            factory.create_name("n"),
            factory.create_street("s"),
            factory.create_city("c"),
            factory.create_state("st"),
            factory.create_zip("1"),
        )
        group = choice_binding.class_named("PurchaseOrderTypeCC1Group")
        assert issubclass(group, VdomGroup)
        assert isinstance(sing, group)

    def test_either_alternative_accepted(self, choice_binding):
        factory = choice_binding.factory
        sing = factory.create_sing_addr(
            factory.create_name("n"), factory.create_street("s"),
            factory.create_city("c"), factory.create_state("st"),
            factory.create_zip("1"),
        )
        po = factory.create_purchase_order(sing, factory.create_items())
        assert po.purchase_order_type_cc1 is sing

    def test_wrong_element_in_choice_rejected(self, choice_binding):
        factory = choice_binding.factory
        with pytest.raises(VdomTypeError):
            factory.create_purchase_order(
                factory.create_comment("not an address"),
                factory.create_items(),
            )


class TestSubstitutionGroups:
    def test_member_subclasses_head(self, subst_binding):
        head = subst_binding.element_class("comment")
        member = subst_binding.element_class("shipComment")
        assert issubclass(member, head)

    def test_member_usable_for_head(self, subst_binding):
        factory = subst_binding.factory
        notes = factory.create_notes(
            factory.create_ship_comment("by sea"),
            factory.create_comment("plain"),
        )
        assert len(notes.child_elements()) == 2


class TestExtension:
    def test_inherited_properties_visible(self, extension_binding):
        factory = extension_binding.factory
        entry = factory.create_entry(
            factory.create_name("n"),
            factory.create_street("s"),
            factory.create_city("c"),
        )
        assert entry.name.content == "n"
        assert entry.city.content == "c"


class TestDeferredValidationMode:
    def test_deferred_mode_allows_intermediate_states(self):
        binding = bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)
        factory = binding.factory
        # An incomplete shipTo is representable in deferred mode...
        partial = factory.create_ship_to(factory.create_name("n"))
        # ...but an explicit check still finds the problem.
        with pytest.raises(VdomTypeError):
            partial.check_valid()

"""The interface-model IR container and reference types."""

import pytest

from repro.xsd import parse_schema
from repro.core.generate import generate_interfaces
from repro.core.model import (
    FieldKind,
    Interface,
    InterfaceKind,
    InterfaceModel,
    TypeRef,
)
from repro.core.normalize import normalize
from repro.schemas import PURCHASE_ORDER_SCHEMA


@pytest.fixture(scope="module")
def model():
    schema = parse_schema(PURCHASE_ORDER_SCHEMA)
    normalize(schema)
    return generate_interfaces(schema)


class TestTypeRef:
    def test_plain_rendering(self):
        assert str(TypeRef("USAddressType")) == "USAddressType"

    def test_list_rendering(self):
        assert str(TypeRef.list_of(TypeRef("itemElement"))) == (
            "list<itemElement>"
        )

    def test_primitive_flag(self):
        assert TypeRef("string", primitive=True).primitive
        assert not TypeRef("SKU").primitive


class TestInterfaceModel:
    def test_registry_access(self, model):
        assert "purchaseOrderElement" in model
        assert model["purchaseOrderElement"].kind is InterfaceKind.ELEMENT
        assert len(model) > 10

    def test_duplicate_keys_rejected(self, model):
        schema = parse_schema(PURCHASE_ORDER_SCHEMA)
        fresh = InterfaceModel(schema)
        fresh.add(Interface(key="x", name="x", kind=InterfaceKind.TYPE))
        with pytest.raises(KeyError):
            fresh.add(Interface(key="x", name="x", kind=InterfaceKind.TYPE))

    def test_by_kind_partitions(self, model):
        total = sum(
            len(model.by_kind(kind))
            for kind in (
                InterfaceKind.ELEMENT,
                InterfaceKind.TYPE,
                InterfaceKind.GROUP,
                InterfaceKind.SIMPLE,
            )
        )
        assert total == len(model)

    def test_element_interface_lookup(self, model):
        interface = model.element_interface("purchaseOrder")
        assert interface.key == "purchaseOrderElement"
        with pytest.raises(KeyError):
            model.element_interface("ghost")

    def test_nested_interfaces(self, model):
        nested = model.nested_interfaces("USAddressType")
        names = {interface.name for interface in nested}
        assert names == {
            "nameElement", "streetElement", "cityElement",
            "stateElement", "zipElement",
        }

    def test_field_lookup(self, model):
        interface = model["PurchaseOrderTypeType"]
        field = interface.field("orderDate")
        assert field.kind is FieldKind.ATTRIBUTE
        with pytest.raises(KeyError):
            interface.field("ghost")

    def test_iteration_order_is_creation_order(self, model):
        keys = [interface.key for interface in model]
        assert keys == list(model.interfaces)

"""The eight transformation rules → interface model."""

import pytest

from repro.xsd import parse_schema
from repro.core.generate import ChoiceStrategy, generate_interfaces
from repro.core.model import FieldKind, InterfaceKind
from repro.core.normalize import normalize
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.variants import (
    ADDRESS_EXTENSION_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
    SUBSTITUTION_GROUP_SCHEMA,
)


@pytest.fixture(scope="module")
def po_model():
    schema = parse_schema(PURCHASE_ORDER_SCHEMA)
    normalize(schema)
    return generate_interfaces(schema)


class TestRule1Elements(object):
    def test_global_elements_become_interfaces(self, po_model):
        interface = po_model["purchaseOrderElement"]
        assert interface.kind is InterfaceKind.ELEMENT
        content = interface.field("content")
        assert content.kind is FieldKind.CONTENT
        assert content.type.name == "PurchaseOrderTypeType"

    def test_simple_typed_element_content_is_primitive(self, po_model):
        comment = po_model["commentElement"]
        assert comment.field("content").type.primitive
        assert comment.field("content").type.name == "string"

    def test_local_elements_nested_in_owner(self, po_model):
        ship_to = po_model["PurchaseOrderTypeType.shipToElement"]
        assert ship_to.nested_in == "PurchaseOrderTypeType"
        assert ship_to.field("content").type.name == "USAddressType"


class TestRule2Types:
    def test_named_types_become_interfaces(self, po_model):
        assert "PurchaseOrderTypeType" in po_model
        assert "USAddressType" in po_model
        assert "ItemsType" in po_model

    def test_rule4_sequence_members_become_fields(self, po_model):
        interface = po_model["PurchaseOrderTypeType"]
        names = [f.name for f in interface.fields]
        assert names == ["shipTo", "billTo", "comment", "items", "orderDate"]

    def test_optional_member_flagged(self, po_model):
        comment = po_model["PurchaseOrderTypeType"].field("comment")
        assert comment.optional
        assert comment.kind is FieldKind.CHILD

    def test_ref_member_points_at_global_interface(self, po_model):
        comment = po_model["PurchaseOrderTypeType"].field("comment")
        assert comment.target_key == "commentElement"


class TestRule5Lists:
    def test_repeated_element_becomes_list_field(self, po_model):
        items = po_model["ItemsType"]
        field = items.field("itemList")
        assert field.kind is FieldKind.LIST
        assert str(field.type) == "list<itemElement>"
        assert field.min_occurs == 0
        assert field.max_occurs == -1


class TestRule6Choice:
    @pytest.fixture(scope="class")
    def choice_model(self):
        schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
        normalize(schema)
        return generate_interfaces(schema)

    def test_choice_becomes_abstract_group_interface(self, choice_model):
        group = choice_model["PurchaseOrderTypeCC1Group"]
        assert group.kind is InterfaceKind.GROUP
        assert group.abstract

    def test_alternatives_inherit_from_group(self, choice_model):
        sing = choice_model["PurchaseOrderTypeCC1Group.singAddrElement"]
        assert "PurchaseOrderTypeCC1Group" in sing.extends

    def test_type_field_references_group(self, choice_model):
        interface = choice_model["PurchaseOrderTypeType"]
        field = interface.field("PurchaseOrderTypeCC1")
        assert field.kind is FieldKind.CHOICE
        assert field.type.name == "PurchaseOrderTypeCC1Group"

    def test_union_strategy_produces_fig5_shape(self):
        schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
        normalize(schema)
        model = generate_interfaces(schema, ChoiceStrategy.UNION)
        group = model["PurchaseOrderTypeCC1Group"]
        assert group.union is not None
        assert [alt.case_name for alt in group.union] == [
            "singAddr", "twoAddr"
        ]
        assert not group.abstract
        sing = model["PurchaseOrderTypeCC1Group.singAddrElement"]
        assert "PurchaseOrderTypeCC1Group" not in sing.extends


class TestRule7Attributes:
    def test_attribute_fields(self, po_model):
        order_date = po_model["PurchaseOrderTypeType"].field("orderDate")
        assert order_date.kind is FieldKind.ATTRIBUTE
        assert order_date.type.name == "Date"

    def test_fixed_and_required_flags(self, po_model):
        country = po_model["USAddressType"].field("country")
        assert country.fixed == "US"
        part_num = po_model["ItemTypeType"].field("partNum")
        assert part_num.required
        assert part_num.type.name == "SKU"


class TestRule8SimpleTypes:
    def test_named_simple_type_interface(self, po_model):
        sku = po_model["SKU"]
        assert sku.kind is InterfaceKind.SIMPLE
        assert sku.base_primitive is not None
        assert sku.base_primitive.name == "string"

    def test_generated_anonymous_simple_type(self, po_model):
        quantity = po_model["QuantityType"]
        assert quantity.kind is InterfaceKind.SIMPLE
        assert quantity.base_primitive.name == "positiveInteger"


class TestDerivationMappings:
    def test_extension_maps_to_inheritance(self):
        schema = parse_schema(ADDRESS_EXTENSION_SCHEMA)
        normalize(schema)
        model = generate_interfaces(schema)
        us_address = model["USAddressType"]
        assert "AddressType" in us_address.extends
        own_fields = [f.name for f in us_address.fields]
        assert own_fields == ["state", "zip"]  # only the extension's own

    def test_substitution_group_maps_to_inheritance(self):
        schema = parse_schema(SUBSTITUTION_GROUP_SCHEMA)
        normalize(schema)
        model = generate_interfaces(schema)
        ship = model["shipCommentElement"]
        assert "commentElement" in ship.extends

    def test_abstract_element_interface(self):
        schema = parse_schema(
            SUBSTITUTION_GROUP_SCHEMA.replace(
                '<xsd:element name="comment" type="xsd:string"/>',
                '<xsd:element name="comment" type="xsd:string"'
                ' abstract="true"/>',
            )
        )
        normalize(schema)
        model = generate_interfaces(schema)
        assert model["commentElement"].abstract

"""IDL rendering: Figures 5, 6 and Appendix A."""

import pytest

from repro.xsd import parse_schema
from repro.core.generate import ChoiceStrategy, generate_interfaces
from repro.core.idl import render_idl
from repro.core.normalize import normalize
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.variants import PURCHASE_ORDER_CHOICE_SCHEMA


def idl_for(schema_text, strategy=ChoiceStrategy.INHERITANCE):
    schema = parse_schema(schema_text)
    normalize(schema)
    return render_idl(generate_interfaces(schema, strategy))


@pytest.fixture(scope="module")
def appendix_idl():
    return idl_for(PURCHASE_ORDER_SCHEMA)


class TestAppendixA:
    """APP-A: the printed interfaces match the paper's appendix."""

    def test_element_interfaces_present(self, appendix_idl):
        assert "interface purchaseOrderElement {" in appendix_idl
        assert "attribute PurchaseOrderTypeType content;" in appendix_idl
        assert "interface commentElement {" in appendix_idl
        assert "attribute string content;" in appendix_idl

    def test_purchase_order_type_fields(self, appendix_idl):
        assert "attribute shipToElement shipTo;" in appendix_idl
        assert "attribute billToElement billTo;" in appendix_idl
        assert "attribute commentElement comment;" in appendix_idl
        assert "attribute itemsElement items;" in appendix_idl
        assert "attribute Date orderDate;" in appendix_idl

    def test_us_address_fields(self, appendix_idl):
        for name in ("name", "street", "city", "state", "zip"):
            assert f"attribute {name}Element {name};" in appendix_idl
        assert "attribute NMToken country;" in appendix_idl

    def test_item_list_uses_parametric_list(self, appendix_idl):
        assert "attribute list<itemElement> itemList;" in appendix_idl

    def test_item_fields(self, appendix_idl):
        assert "attribute productNameElement productName;" in appendix_idl
        assert "attribute quantityElement quantity;" in appendix_idl
        assert "attribute USPriceElement USPrice;" in appendix_idl
        assert "attribute shipDateElement shipDate;" in appendix_idl
        assert "attribute SKU partNum;" in appendix_idl

    def test_sku_restricts_string(self, appendix_idl):
        assert "interface SKU: string" in appendix_idl

    def test_nesting_matches_appendix(self, appendix_idl):
        """Local element interfaces appear inside their type interface."""
        type_block = appendix_idl.split("interface USAddressType {")[1]
        type_block = type_block.split("\n}")[0]
        assert "interface nameElement {" in type_block

    def test_zip_is_decimal(self, appendix_idl):
        assert "attribute decimal content;" in appendix_idl


class TestFig6Inheritance:
    def test_group_interface_and_inheritance(self):
        idl = idl_for(PURCHASE_ORDER_CHOICE_SCHEMA)
        assert "abstract interface PurchaseOrderTypeCC1Group" in idl
        assert (
            "interface singAddrElement: PurchaseOrderTypeCC1Group" in idl
        )
        assert (
            "interface twoAddrElement: PurchaseOrderTypeCC1Group" in idl
        )
        assert (
            "attribute PurchaseOrderTypeCC1Group PurchaseOrderTypeCC1;"
            in idl
        )


class TestFig5Union:
    def test_union_typedef_rendered(self):
        idl = idl_for(PURCHASE_ORDER_CHOICE_SCHEMA, ChoiceStrategy.UNION)
        assert "typedef union PurchaseOrderTypeCC1Group" in idl
        assert "switch (enum PurchaseOrderTypeCC1ST(singAddr,twoAddr))" in idl
        assert "case singAddr: singAddrElement singAddr;" in idl
        assert "case twoAddr: twoAddrElement twoAddr;" in idl


class TestAnnotations:
    def test_optional_comment_marker(self, appendix_idl):
        assert "attribute commentElement comment;  // optional" in appendix_idl

    def test_fixed_attribute_marker(self, appendix_idl):
        assert 'fixed="US"' in appendix_idl

    def test_required_attribute_marker(self, appendix_idl):
        assert "attribute SKU partNum;  // required" in appendix_idl

    def test_occurrence_comment_on_lists(self, appendix_idl):
        assert "// occurs 0..unbounded" in appendix_idl

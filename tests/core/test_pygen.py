"""Generated Python binding modules."""

import pytest

from repro.core.pygen import generate_python_module, load_generated_module
from repro.errors import VdomTypeError
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA


@pytest.fixture(scope="module")
def po_module():
    source = generate_python_module(PURCHASE_ORDER_SCHEMA, "PO binding")
    return source, load_generated_module(source, "po_generated")


class TestGeneratedModule:
    def test_module_is_valid_python(self, po_module):
        source, __ = po_module
        compile(source, "<generated>", "exec")

    def test_title_and_api_summary_in_docstring(self, po_module):
        source, module = po_module
        assert source.startswith('"""PO binding')
        assert "class PurchaseOrderElement(TypedElement):" in source
        assert ".part_num  # attribute: SKU" in source
        assert ".value  # QuantityType" in source

    def test_schema_source_embedded(self, po_module):
        __, module = po_module
        assert "purchaseOrder" in module.SCHEMA_SOURCE

    def test_exported_classes_work(self, po_module):
        __, module = po_module
        comment = module.CommentElement("hello")
        assert comment.content == "hello"
        assert isinstance(comment, module.CommentElement)

    def test_factory_exported(self, po_module):
        __, module = po_module
        quantity = module.factory.create_quantity(3)
        assert quantity.value == 3

    def test_enforcement_survives_generation(self, po_module):
        __, module = po_module
        with pytest.raises(VdomTypeError):
            module.factory.create_quantity(100)

    def test_all_lists_every_export(self, po_module):
        __, module = po_module
        for name in module.__all__:
            assert hasattr(module, name)

    def test_document_helper(self, po_module):
        __, module = po_module
        comment = module.CommentElement("x")
        document = module.document(comment)
        assert document.document_element is comment


class TestFileOutput:
    def test_write_python_module(self, tmp_path):
        from repro.core.pygen import write_python_module

        path = tmp_path / "po_binding.py"
        write_python_module(PURCHASE_ORDER_SCHEMA, str(path), "PO")
        source = path.read_text()
        assert source.startswith('"""PO')
        # The written module is importable as a file.
        import importlib.util

        spec = importlib.util.spec_from_file_location("po_file_binding", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.factory.create_comment("x").content == "x"


class TestOtherSchemas:
    def test_wml_module_generates(self):
        source = generate_python_module(WML_SCHEMA, "WML binding")
        module = load_generated_module(source, "wml_generated")
        option = module.factory.create_option("..", value="/ws")
        assert option.get_attribute("value") == "/ws"

    def test_parsed_schema_rejected(self):
        from repro.xsd import parse_schema

        with pytest.raises(TypeError):
            generate_python_module(parse_schema(PURCHASE_ORDER_SCHEMA))

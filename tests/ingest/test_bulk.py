"""Bulk validation: report shape, parallel equivalence, verdict caching,
and the ``vdom-generate validate`` CLI integration."""

import json

import pytest

from repro.cli import main
from repro.ingest import validate_files
from repro.schemas import PURCHASE_ORDER_DOCUMENT, PURCHASE_ORDER_SCHEMA
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS


@pytest.fixture()
def corpus(tmp_path):
    """Six documents: four valid, one invalid, one unreadable."""
    paths = []
    for index in range(4):
        path = tmp_path / f"ok{index}.xml"
        path.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        paths.append(path)
    bad = tmp_path / "bad.xml"
    bad.write_text(
        PURCHASE_ORDER_INVALID_DOCUMENTS["bad-sku"], encoding="utf-8"
    )
    paths.append(bad)
    paths.append(tmp_path / "missing.xml")  # never created
    return paths


class TestValidateFiles:
    def test_report_shape(self, corpus, tmp_path):
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, schema_label="po.xsd"
        )
        assert report["schema"] == "po.xsd"
        assert report["jobs"] == 1
        summary = report["summary"]
        assert summary["documents"] == 6
        assert summary["valid"] == 4
        assert summary["invalid"] == 2
        assert summary["fused"] == 4
        assert len(report["files"]) == 6
        for record in report["files"]:
            assert set(record) == {
                "path", "valid", "error", "error_type", "fused",
                "cached", "ms",
            }
        by_name = {record["path"].rsplit("/", 1)[-1]: record
                   for record in report["files"]}
        assert by_name["bad.xml"]["error_type"] == "VdomTypeError"
        assert "partNum" in by_name["bad.xml"]["error"]
        assert by_name["missing.xml"]["error_type"] == "OSError"
        # The report must be JSON-serializable as-is.
        json.dumps(report)

    def test_jobs_agree_with_inline(self, corpus):
        inline = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        pooled = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=2)
        strip = lambda report: [
            {key: record[key] for key in ("path", "valid", "error", "error_type")}
            for record in report["files"]
        ]
        assert strip(pooled) == strip(inline)
        assert pooled["jobs"] == 2

    def test_verdict_cache_hits_on_rerun(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        first = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        assert first["summary"]["cached"] == 0
        second = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        # Readable documents (valid *and* invalid) answer from the cache;
        # the unreadable one is re-attempted every run.
        assert second["summary"]["cached"] == 5
        assert second["summary"]["valid"] == first["summary"]["valid"]
        bad = [r for r in second["files"] if r["path"].endswith("bad.xml")][0]
        assert bad["cached"] is True
        assert "partNum" in bad["error"]

    def test_content_change_invalidates_verdict(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        validate_files(PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir))
        corpus[0].write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"], encoding="utf-8"
        )
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        changed = [
            r for r in report["files"] if r["path"].endswith("ok0.xml")
        ][0]
        assert changed["cached"] is False
        assert changed["valid"] is False


class TestCli:
    def _write_schema(self, tmp_path):
        schema = tmp_path / "po.xsd"
        schema.write_text(PURCHASE_ORDER_SCHEMA, encoding="utf-8")
        return schema

    def test_single_document_keeps_validator_output(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        doc = tmp_path / "doc.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        code = main(["--no-cache", "validate", str(schema), str(doc)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_bulk_mode_report_and_exit_code(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        good = tmp_path / "good.xml"
        good.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        bad = tmp_path / "bad.xml"
        bad.write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-date"], encoding="utf-8"
        )
        report_path = tmp_path / "report.json"
        code = main(
            [
                "--cache-dir", str(tmp_path / "cache"),
                "validate", str(schema), str(good), str(bad),
                "--report", str(report_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert f"ok   {good}" in out
        assert f"FAIL {bad}" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["summary"]["documents"] == 2
        assert report["summary"]["invalid"] == 1

    def test_bulk_mode_with_jobs(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        docs = []
        for index in range(3):
            doc = tmp_path / f"d{index}.xml"
            doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
            docs.append(str(doc))
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs, "--jobs", "2"]
        )
        assert code == 0
        assert "3 valid, 0 invalid" in capsys.readouterr().out

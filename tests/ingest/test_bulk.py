"""Bulk validation: report shape, parallel equivalence, verdict caching,
and the ``vdom-generate validate`` CLI integration."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.errors import ReproError
from repro.ingest import effective_jobs, validate_files
from repro.schemas import PURCHASE_ORDER_DOCUMENT, PURCHASE_ORDER_SCHEMA
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS


@pytest.fixture()
def obs_clean():
    """Restore the module-level obs gate/registry after the test."""
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def corpus(tmp_path):
    """Six documents: four valid, one invalid, one unreadable."""
    paths = []
    for index in range(4):
        path = tmp_path / f"ok{index}.xml"
        path.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        paths.append(path)
    bad = tmp_path / "bad.xml"
    bad.write_text(
        PURCHASE_ORDER_INVALID_DOCUMENTS["bad-sku"], encoding="utf-8"
    )
    paths.append(bad)
    paths.append(tmp_path / "missing.xml")  # never created
    return paths


class TestValidateFiles:
    def test_report_shape(self, corpus, tmp_path):
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, schema_label="po.xsd"
        )
        assert report["schema"] == "po.xsd"
        assert report["jobs"] == 1
        summary = report["summary"]
        assert summary["documents"] == 6
        assert summary["valid"] == 4
        assert summary["invalid"] == 2
        assert summary["fused"] == 4
        assert len(report["files"]) == 6
        for record in report["files"]:
            assert set(record) == {
                "path", "valid", "error", "error_type", "fused",
                "cached", "ms",
            }
        by_name = {record["path"].rsplit("/", 1)[-1]: record
                   for record in report["files"]}
        assert by_name["bad.xml"]["error_type"] == "VdomTypeError"
        assert "partNum" in by_name["bad.xml"]["error"]
        # The concrete class, not the old hardcoded "OSError" string.
        assert by_name["missing.xml"]["error_type"] == "FileNotFoundError"
        # The report must be JSON-serializable as-is.
        json.dumps(report)

    def test_jobs_agree_with_inline(self, corpus):
        inline = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        pooled = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False
        )
        strip = lambda report: [
            {key: record[key] for key in ("path", "valid", "error", "error_type")}
            for record in report["files"]
        ]
        assert strip(pooled) == strip(inline)
        assert pooled["jobs"] == 2

    def test_verdict_cache_hits_on_rerun(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        first = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        assert first["summary"]["cached"] == 0
        second = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        # Readable documents (valid *and* invalid) answer from the cache;
        # the unreadable one is re-attempted every run.
        assert second["summary"]["cached"] == 5
        assert second["summary"]["valid"] == first["summary"]["valid"]
        bad = [r for r in second["files"] if r["path"].endswith("bad.xml")][0]
        assert bad["cached"] is True
        assert "partNum" in bad["error"]

    def test_content_change_invalidates_verdict(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        validate_files(PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir))
        corpus[0].write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"], encoding="utf-8"
        )
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, cache_dir=str(cache_dir)
        )
        changed = [
            r for r in report["files"] if r["path"].endswith("ok0.xml")
        ][0]
        assert changed["cached"] is False
        assert changed["valid"] is False


class TestCli:
    def _write_schema(self, tmp_path):
        schema = tmp_path / "po.xsd"
        schema.write_text(PURCHASE_ORDER_SCHEMA, encoding="utf-8")
        return schema

    def test_single_document_keeps_validator_output(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        doc = tmp_path / "doc.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        code = main(["--no-cache", "validate", str(schema), str(doc)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_bulk_mode_report_and_exit_code(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        good = tmp_path / "good.xml"
        good.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        bad = tmp_path / "bad.xml"
        bad.write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-date"], encoding="utf-8"
        )
        report_path = tmp_path / "report.json"
        code = main(
            [
                "--cache-dir", str(tmp_path / "cache"),
                "validate", str(schema), str(good), str(bad),
                "--report", str(report_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert f"ok   {good}" in out
        assert f"FAIL {bad}" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["summary"]["documents"] == 2
        assert report["summary"]["invalid"] == 1

    def test_bulk_mode_with_jobs(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        docs = []
        for index in range(3):
            doc = tmp_path / f"d{index}.xml"
            doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
            docs.append(str(doc))
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs, "--jobs", "2"]
        )
        assert code == 0
        assert "3 valid, 0 invalid" in capsys.readouterr().out

    def test_bulk_mode_batch_size_lands_in_report(self, tmp_path, capsys):
        schema = self._write_schema(tmp_path)
        docs = []
        for index in range(4):
            doc = tmp_path / f"d{index}.xml"
            doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
            docs.append(str(doc))
        report_path = tmp_path / "report.json"
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs,
             "--jobs", "2", "--batch-size", "2",
             "--report", str(report_path)]
        )
        assert code == 0
        report = json.loads(report_path.read_text(encoding="utf-8"))
        # On a pooled run the report records the batch size; a 1-CPU
        # runner clamps jobs to 1 and runs inline (batch_size: null).
        if report["jobs"] > 1:
            assert report["batch_size"] == 2
            assert report["pool"]["workers"] == report["jobs"]
        else:
            assert report["batch_size"] is None


class TestHardening:
    """Document- vs schema-level failures: contain the first, fail the
    second fast — in both inline and pooled modes."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_bad_encoding_is_one_failed_verdict(self, tmp_path, jobs):
        good = tmp_path / "good.xml"
        good.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        bad = tmp_path / "latin.xml"
        # Latin-1 bytes: 0xE9 is not valid UTF-8.  This used to escape
        # the worker's OSError-only catch and abort the whole pool.map.
        bad.write_bytes("<comment>caf\xe9</comment>".encode("latin-1"))
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, [good, bad], jobs=jobs, clamp_jobs=False
        )
        assert report["summary"] == dict(
            report["summary"],
            documents=2, valid=1, invalid=1,
        )
        by_name = {
            record["path"].rsplit("/", 1)[-1]: record
            for record in report["files"]
        }
        assert by_name["good.xml"]["valid"] is True
        record = by_name["latin.xml"]
        assert record["valid"] is False
        assert record["error_type"] == "UnicodeDecodeError"
        assert "utf-8" in record["error"]
        json.dumps(report)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_unbindable_schema_raises_cleanly(self, tmp_path, jobs):
        doc = tmp_path / "doc.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        # With jobs=2 this used to crash the Pool initializer, which
        # surfaces as a hang or an opaque BrokenProcessPool; the parent
        # now pre-flights the bind and raises the real error.
        with pytest.raises(ReproError, match="not-a-schema"):
            validate_files(
                "<not-a-schema/>", [doc], jobs=jobs, clamp_jobs=False,
                cache_dir=str(tmp_path / "cache"),
            )


class TestObsIntegration:
    def test_inline_report_carries_route_counters(
        self, corpus, tmp_path, obs_clean
    ):
        cache_dir = str(tmp_path / "cache")
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus,
            cache_dir=cache_dir, collect_obs=True,
        )
        counters = report["obs"]["counters"]
        # Four valid documents took the fused route; the invalid one
        # errors out before its route is decided, the missing one never
        # reaches ingest.  Nothing fell back to the legacy parser.
        assert counters["ingest.route{route=fused}"] == 4
        assert not any(key.startswith("ingest.route{reason")
                       for key in counters)
        # First run over a fresh verdict cache: five readable files,
        # five misses, no hits.
        assert counters["cache.miss{kind=ingest}"] == 5
        assert "cache.hit{kind=ingest}" not in counters
        # Records themselves stay JSON-shaped and delta-free.
        assert all("obs" not in record for record in report["files"])

    def test_rerun_reports_verdict_cache_hits(
        self, corpus, tmp_path, obs_clean
    ):
        cache_dir = str(tmp_path / "cache")
        validate_files(
            PURCHASE_ORDER_SCHEMA, corpus,
            cache_dir=cache_dir, collect_obs=True,
        )
        second = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus,
            cache_dir=cache_dir, collect_obs=True,
        )
        counters = second["obs"]["counters"]
        assert counters["cache.hit{kind=ingest}"] == 5
        # Cached verdicts answer without parsing: no fused-route runs.
        assert "ingest.route{route=fused}" not in counters
        assert second["summary"]["cached"] == 5

    def test_pool_workers_ship_their_observations(
        self, corpus, tmp_path, obs_clean
    ):
        cache_dir = str(tmp_path / "cache")
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False,
            cache_dir=cache_dir, collect_obs=True,
        )
        counters = report["obs"]["counters"]
        assert counters["ingest.route{route=fused}"] == 4
        # The parent's pre-flight bind left a compiled artifact in the
        # cache, so at least one worker warm-started from it.
        assert counters.get("cache.bind.outcome{outcome=warm}", 0) >= 1
        # Pool observations also fold into the parent process registry.
        assert (
            obs.snapshot()["counters"]["ingest.route{route=fused}"] == 4
        )


class TestCliStats:
    def _corpus(self, tmp_path, documents=4):
        schema = tmp_path / "po.xsd"
        schema.write_text(PURCHASE_ORDER_SCHEMA, encoding="utf-8")
        docs = []
        for index in range(documents):
            doc = tmp_path / f"d{index}.xml"
            doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
            docs.append(str(doc))
        return schema, docs

    def test_stats_json_artifact_from_bulk_validate(
        self, tmp_path, capsys, obs_clean
    ):
        """The ISSUE's acceptance check: ``validate --jobs 2
        --stats-json`` reports the pipeline's route counters."""
        schema, docs = self._corpus(tmp_path)
        stats_path = tmp_path / "stats.json"
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs,
             "--jobs", "2", "--stats-json", str(stats_path)]
        )
        assert code == 0
        snapshot = json.loads(stats_path.read_text(encoding="utf-8"))
        assert snapshot["counters"]["ingest.route{route=fused}"] == 4
        assert "cache.miss{kind=ingest}" in snapshot["counters"]

    def test_stats_table_on_stderr(self, tmp_path, capsys, obs_clean):
        schema, docs = self._corpus(tmp_path, documents=2)
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs, "--stats"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "counters" in err
        assert "ingest.route{route=fused}" in err

    def test_stats_flag_accepted_before_subcommand(
        self, tmp_path, capsys, obs_clean
    ):
        schema, docs = self._corpus(tmp_path, documents=2)
        code = main(
            ["--stats", "--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), *docs]
        )
        assert code == 0
        assert "ingest.route{route=fused}" in capsys.readouterr().err

    def test_stats_emitted_even_on_error_exit(
        self, tmp_path, capsys, obs_clean
    ):
        schema = tmp_path / "bad.xsd"
        schema.write_text("<not-a-schema/>", encoding="utf-8")
        doc = tmp_path / "d.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        code = main(
            ["--no-cache", "--stats",
             "validate", str(schema), str(doc), "--jobs", "2"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "not-a-schema" in err


class TestJobsClamp:
    """Oversubscribing the pool pessimizes; the clamp keeps it honest."""

    def test_effective_jobs_pure_logic(self):
        assert effective_jobs(0, cpu_count=4) == 4      # auto: one per CPU
        assert effective_jobs(-3, cpu_count=4) == 4     # negatives mean auto
        assert effective_jobs(2, cpu_count=4) == 2      # under the cap: as asked
        assert effective_jobs(8, cpu_count=4) == 4      # over the cap: clamped
        assert effective_jobs(8, cpu_count=1) == 1
        assert effective_jobs(0, cpu_count=0) == 1      # cpu_count() can be odd
        assert effective_jobs(1) >= 1                   # real os.cpu_count path

    def test_report_records_clamp(self, corpus):
        import os

        cpus = os.cpu_count() or 1
        report = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=cpus + 7)
        assert report["jobs"] == cpus
        assert report["jobs_requested"] == cpus + 7

    def test_jobs_zero_means_auto(self, corpus):
        import os

        report = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=0)
        assert report["jobs"] == (os.cpu_count() or 1)
        assert report["jobs_requested"] == 0
        assert report["summary"]["documents"] == len(corpus)

    def test_clamp_lands_in_obs_section(self, corpus, obs_clean):
        import os

        cpus = os.cpu_count() or 1
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=cpus + 7, collect_obs=True
        )
        counters = report["obs"]["counters"]
        key = (
            "ingest.bulk.jobs_clamped"
            f"{{effective={cpus},requested={cpus + 7}}}"
        )
        assert counters.get(key) == 1, counters

    def test_unclamped_run_has_no_clamp_counter(self, corpus, obs_clean):
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=1, collect_obs=True
        )
        counters = report["obs"]["counters"]
        assert not any("jobs_clamped" in key for key in counters)

    def test_cli_jobs_zero_runs_bulk(self, tmp_path, capsys):
        schema = tmp_path / "po.xsd"
        schema.write_text(PURCHASE_ORDER_SCHEMA, encoding="utf-8")
        doc = tmp_path / "doc.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        code = main(
            ["--cache-dir", str(tmp_path / "cache"),
             "validate", str(schema), str(doc), "--jobs", "0"]
        )
        assert code == 0
        assert "1 valid, 0 invalid" in capsys.readouterr().out

"""Table-driven turbo lanes against the object-DFA golden reference.

The turbo lane's contract is *observational equality* with
``fused_parse(use_tables=False)`` — the object-DFA route preserved as
the golden reference: identical trees (byte-identical serialization)
for accepted documents, identical exception type, message, location,
and path for rejected ones.  It earns that equality either by handling
a document inside its subset bit-for-bit, or by restarting into
``fused_parse`` and letting the reference produce the verdict — so the
property must hold over *hostile* corpora (the scanner-parity golden
set, CRLF documents, expansion bombs), not just clean ones.

Both tokenizer lanes are pinned: the stdlib regex lane always, the
vectorized structural-index lane whenever numpy is importable.
"""

import pytest

from repro.core import bind
from repro.dom.serialize import serialize
from repro.errors import ReproError
from repro.ingest import IngestFallback, fused_parse, legacy_parse, table_parse
from repro.ingest import structural
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_SCHEMA,
    XHTML_SUBSET_SCHEMA,
)
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS
from tests.xml.test_line_endings import CRLF_PURCHASE_ORDER, GOLDEN
from tests.xml.test_parser import _expansion_bomb
from tests.xml.test_scanner_parity import ILL_FORMED, WELL_FORMED

#: every tokenizer lane the parity must pin; "index" silently equals
#: "stdlib" when numpy is missing (the absent-safe degradation itself)
LANES = ["auto", "stdlib"] + (["index"] if structural.AVAILABLE else [])

XHTML_DOCUMENT = """\
<html>
  <head><title>turbo</title><meta name="k" content="v"/></head>
  <body>
    <h1>Heading <b>bold</b> tail</h1>
    <p>Mixed <i>content</i>, a <a href="/x">link</a>,<br/> &amp; more.</p>
    <ul><li>one</li><li>two</li></ul>
  </body>
</html>
"""


@pytest.fixture(scope="module")
def po_binding():
    return bind(PURCHASE_ORDER_SCHEMA)


@pytest.fixture(scope="module")
def xhtml_binding():
    return bind(XHTML_SUBSET_SCHEMA)


def _outcome(route, binding, text):
    """Collapse a parse to a comparable verdict tuple."""
    try:
        tree = route(binding, text)
    except (ReproError, IngestFallback) as error:
        return (
            type(error).__name__,
            getattr(error, "message", str(error)),
            getattr(error, "location", None),
            getattr(error, "path", None),
        )
    return ("ok", serialize(tree))


def _assert_parity(binding, text):
    golden = _outcome(
        lambda b, t: fused_parse(b, t, use_tables=False), binding, text
    )
    for lane in LANES:
        if lane == "index" and not text.isascii():
            continue  # the ASCII gate; "auto" covers the degradation
        turbo = _outcome(
            lambda b, t, lane=lane: table_parse(b, t, lane=lane),
            binding,
            text,
        )
        assert turbo == golden, f"lane {lane!r} diverged"


class TestScannerParityCorpus:
    """The 60+ golden scanner documents, most far outside the PO schema:
    every one must produce the same verdict through every lane."""

    @pytest.mark.parametrize("name", sorted(WELL_FORMED))
    def test_well_formed(self, po_binding, name):
        _assert_parity(po_binding, WELL_FORMED[name])

    @pytest.mark.parametrize("name", sorted(ILL_FORMED))
    def test_ill_formed(self, po_binding, name):
        _assert_parity(po_binding, ILL_FORMED[name])


class TestLineEndingCorpus:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden_line_endings(self, po_binding, name):
        document, _expected = GOLDEN[name]
        _assert_parity(po_binding, document)

    def test_crlf_purchase_order(self, po_binding):
        _assert_parity(po_binding, CRLF_PURCHASE_ORDER)
        # ...and the accepted tree equals the legacy route's, i.e. the
        # CRLF normalization survived the turbo lane's restart.
        assert serialize(table_parse(po_binding, CRLF_PURCHASE_ORDER)) == (
            serialize(legacy_parse(po_binding, CRLF_PURCHASE_ORDER))
        )


class TestHostileDocuments:
    @pytest.mark.parametrize("where", ["content", "attribute"])
    def test_expansion_bomb(self, po_binding, where):
        _assert_parity(po_binding, _expansion_bomb(where=where))

    def test_unknown_root(self, po_binding):
        _assert_parity(po_binding, "<unknown><x/></unknown>")

    def test_doctype_document(self, po_binding):
        # DOCTYPE is outside the *fused* subset too: both routes must
        # raise the same IngestFallback signal.
        _assert_parity(
            po_binding, "<!DOCTYPE purchaseOrder><purchaseOrder/>"
        )


class TestSchemaVerdicts:
    @pytest.mark.parametrize("name", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_invalid_documents(self, po_binding, name):
        _assert_parity(po_binding, PURCHASE_ORDER_INVALID_DOCUMENTS[name])

    def test_valid_purchase_order(self, po_binding):
        _assert_parity(po_binding, PURCHASE_ORDER_DOCUMENT)
        for lane in LANES:
            assert serialize(table_parse(
                po_binding, PURCHASE_ORDER_DOCUMENT, lane=lane
            )) == serialize(legacy_parse(po_binding, PURCHASE_ORDER_DOCUMENT))

    def test_valid_xhtml(self, xhtml_binding):
        _assert_parity(xhtml_binding, XHTML_DOCUMENT)

    def test_non_ascii_document(self, po_binding):
        # Forces the index lane's ASCII gate: "auto" must degrade to the
        # stdlib scanner and still match the golden route.
        text = PURCHASE_ORDER_DOCUMENT.replace(
            "Mill Valley", "Mill Vällé\U0001f600"
        )
        _assert_parity(po_binding, text)


class TestLaneSelection:
    def test_unknown_lane_rejected(self, po_binding):
        with pytest.raises(ValueError, match="unknown turbo lane"):
            table_parse(po_binding, "<a/>", lane="warp")

    @pytest.mark.skipif(
        not structural.AVAILABLE, reason="numpy unavailable"
    )
    def test_index_lane_rejects_non_ascii(self, po_binding):
        with pytest.raises(ValueError):
            table_parse(
                po_binding, "<purchaseOrder>é</purchaseOrder>", lane="index"
            )


class TestStructuralIndex:
    def test_positions_match_str_scan(self):
        text = '<a x="1"><b>text > with stray gt</b><c/></a>'
        index = structural.markup_index(text)
        if index is None:
            pytest.skip("numpy unavailable")
        lts, gts = index
        assert lts == [i for i, c in enumerate(text) if c == "<"]
        assert gts == [i for i, c in enumerate(text) if c == ">"]

    def test_start_offset_trims(self):
        text = "<a><b/></a>"
        index = structural.markup_index(text, start=3)
        if index is None:
            pytest.skip("numpy unavailable")
        lts, gts = index
        assert all(p >= 3 for p in lts + gts)
        assert lts == [3, 7]

    def test_non_ascii_returns_none(self):
        if not structural.AVAILABLE:
            pytest.skip("numpy unavailable")
        assert structural.markup_index("<a>é</a>") is None

    def test_absent_numpy_is_clean(self, tmp_path):
        """REPRO_NO_NUMPY must yield AVAILABLE=False and full parity."""
        import os
        import subprocess
        import sys

        script = (
            "from repro.ingest import structural, table_parse, fused_parse\n"
            "from repro.core import bind\n"
            "from repro.dom.serialize import serialize\n"
            "from repro.schemas import PURCHASE_ORDER_SCHEMA, "
            "PURCHASE_ORDER_DOCUMENT\n"
            "assert structural.AVAILABLE is False\n"
            "assert structural.markup_index('<a/>') is None\n"
            "binding = bind(PURCHASE_ORDER_SCHEMA)\n"
            "assert serialize(table_parse(binding, PURCHASE_ORDER_DOCUMENT))"
            " == serialize(fused_parse(binding, PURCHASE_ORDER_DOCUMENT,"
            " use_tables=False))\n"
            "print('no-numpy-ok')\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH"),
            )
            if part
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "no-numpy-ok" in completed.stdout

"""The fused parse-to-typed-tree path against the legacy three-pass route.

The contract: ``fused_parse`` is observationally identical to
``binding.from_dom(parse_document(text).document_element)`` — same
classes, same tree bytes, same rejections with the same messages, same
post-parse mutation behavior — just without the generic-DOM intermediate
and the second validation pass.
"""

import pytest

from repro.core import bind
from repro.dom.serialize import serialize
from repro.errors import VdomTypeError, XmlSyntaxError
from repro.ingest import IngestFallback, fused_parse, ingest, legacy_parse, parse_typed
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_SCHEMA,
    XHTML_SUBSET_SCHEMA,
)
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS

XHTML_DOCUMENT = """\
<html>
  <head>
    <title>Fused ingest</title>
    <meta name="author" content="nobody"/>
  </head>
  <body>
    <h1>Heading <b>bold</b> tail</h1>
    <p>Mixed <i>content</i> with a <a href="http://example.com">link</a>,
       a break<br/> and <![CDATA[literal <markup>]]>.</p>
    <ul><li>one</li><li>two &amp; three</li></ul>
    <table><tr><td>cell</td></tr></table>
  </body>
</html>
"""


@pytest.fixture(scope="module")
def po_binding():
    return bind(PURCHASE_ORDER_SCHEMA)


@pytest.fixture(scope="module")
def xhtml_binding():
    return bind(XHTML_SUBSET_SCHEMA)


class TestValidDocuments:
    def test_purchase_order_identical(self, po_binding):
        legacy = legacy_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        assert type(fused) is type(legacy)
        assert serialize(fused) == serialize(legacy)

    def test_xhtml_identical(self, xhtml_binding):
        legacy = legacy_parse(xhtml_binding, XHTML_DOCUMENT)
        fused = fused_parse(xhtml_binding, XHTML_DOCUMENT)
        assert type(fused) is type(legacy)
        assert serialize(fused) == serialize(legacy)

    def test_tree_shape_matches(self, po_binding):
        legacy = legacy_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)

        def shape(element):
            return (
                type(element).__name__,
                element.tag_name,
                dict(element.attributes.items()),
                [shape(child) for child in element.child_elements()],
            )

        assert shape(fused) == shape(legacy)

    def test_ingest_reports_fused_route(self, po_binding):
        result = ingest(po_binding, PURCHASE_ORDER_DOCUMENT)
        assert result.fused is True

    def test_parse_typed_returns_root(self, po_binding):
        root = parse_typed(po_binding, PURCHASE_ORDER_DOCUMENT)
        assert root.tag_name == "purchaseOrder"

    def test_attribute_defaults_and_fixed_applied(self, po_binding):
        # country is fixed="US"; omitting it must still materialize it.
        text = PURCHASE_ORDER_DOCUMENT.replace(' country="US"', "")
        legacy = legacy_parse(po_binding, text)
        fused = fused_parse(po_binding, text)
        ship_to = fused.child_elements()[0]
        assert ship_to.attributes.items() == [("country", "US")]
        assert serialize(fused) == serialize(legacy)


class TestInvalidDocuments:
    @pytest.mark.parametrize("name", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_same_rejection(self, po_binding, name):
        text = PURCHASE_ORDER_INVALID_DOCUMENTS[name]
        with pytest.raises(VdomTypeError) as legacy:
            legacy_parse(po_binding, text)
        with pytest.raises(VdomTypeError) as fused:
            fused_parse(po_binding, text)
        assert str(fused.value) == str(legacy.value)

    def test_unknown_root(self, po_binding):
        for route in (legacy_parse, fused_parse):
            with pytest.raises(VdomTypeError, match="not a global element"):
                route(po_binding, "<unknown/>")

    def test_missing_required_attribute_xhtml(self, xhtml_binding):
        text = XHTML_DOCUMENT.replace(' href="http://example.com"', "")
        with pytest.raises(VdomTypeError) as legacy:
            legacy_parse(xhtml_binding, text)
        with pytest.raises(VdomTypeError) as fused:
            fused_parse(xhtml_binding, text)
        assert str(fused.value) == str(legacy.value)

    def test_syntax_error_outranks_validity_error(self, po_binding):
        # The validity problem (comment out of order) appears *before* the
        # syntax problem (unclosed root), but the legacy route parses the
        # whole document first — so both routes must report the syntax
        # error.
        text = (
            "<purchaseOrder><comment>early</comment><shipTo>"  # invalid
        )  # ... and unterminated
        with pytest.raises(XmlSyntaxError) as legacy:
            legacy_parse(po_binding, text)
        with pytest.raises(XmlSyntaxError) as fused:
            fused_parse(po_binding, text)
        assert str(fused.value) == str(legacy.value)


class TestFallback:
    def test_doctype_falls_back(self, po_binding):
        text = "<!DOCTYPE purchaseOrder>\n" + PURCHASE_ORDER_DOCUMENT
        with pytest.raises(IngestFallback):
            fused_parse(po_binding, text)
        result = ingest(po_binding, text)
        assert result.fused is False
        assert serialize(result.root) == serialize(
            legacy_parse(po_binding, text)
        )

    def test_internal_subset_falls_back(self, po_binding):
        text = (
            "<!DOCTYPE purchaseOrder [<!ATTLIST item partNum CDATA #IMPLIED>]>\n"
            + PURCHASE_ORDER_DOCUMENT
        )
        result = ingest(po_binding, text)
        assert result.fused is False


class TestValidationToggle:
    def test_value_errors_ignored_without_validation(self):
        binding = bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)
        text = PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]
        legacy = legacy_parse(binding, text)
        fused = fused_parse(binding, text)
        assert serialize(fused) == serialize(legacy)

    def test_structural_errors_still_caught(self):
        # Child attribution *is* the construction algorithm; it rejects
        # misplaced elements on both routes even with validation off.
        binding = bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)
        text = PURCHASE_ORDER_INVALID_DOCUMENTS["wrong-element-order"]
        with pytest.raises(VdomTypeError) as legacy:
            legacy_parse(binding, text)
        with pytest.raises(VdomTypeError) as fused:
            fused_parse(binding, text)
        assert str(fused.value) == str(legacy.value)


class TestPostParseMutation:
    def test_fast_append_state_is_primed(self, po_binding):
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        items = fused.child_elements()[-1]
        assert items.tag_name == "items"
        assert items._content_state is not None

    def test_valid_append_accepted(self, po_binding):
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        legacy = legacy_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        factory = po_binding.factory
        for tree in (fused, legacy):
            items = tree.child_elements()[-1]
            items.append_child(
                factory.create_item(
                    factory.create_product_name("Shovel"),
                    factory.create_quantity(2),
                    factory.create_us_price("19.99"),
                    part_num="123-AB",
                )
            )
        assert serialize(fused) == serialize(legacy)

    def test_invalid_append_rejected_identically(self, po_binding):
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        legacy = legacy_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        factory = po_binding.factory
        errors = []
        for tree in (fused, legacy):
            items = tree.child_elements()[-1]
            with pytest.raises(VdomTypeError) as excinfo:
                items.append_child(factory.create_comment("not allowed here"))
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]

    def test_attribute_mutation_guarded(self, po_binding):
        fused = fused_parse(po_binding, PURCHASE_ORDER_DOCUMENT)
        with pytest.raises(VdomTypeError):
            fused.set_attribute("orderDate", "not a date")
        fused.set_attribute("orderDate", "2001-02-03")
        assert fused.get_attribute("orderDate") == "2001-02-03"

"""Namespaced schemas through the bulk/pool lanes and the typed-layer
feature boundary.

The typed V-DOM layer matches by local name, so namespaced schemas bind
(interfaces, IDL, pool workers) but route instance validation through
the streaming validator; ``from_dom``/fused/table ingest refuse with a
clear :class:`UnsupportedFeatureError` instead of silently matching the
wrong names.  Lazy bulk mode sniffs instance roots and binds a
per-subset artifact, falling back to the full bind when any document is
unsniffable.
"""

import os

import pytest

from repro.core.vdom import bind
from repro.errors import UnsupportedFeatureError
from repro.ingest import validate_files
from repro.ingest.fused import fused_parse
from repro.ingest.table_driven import table_parse

NS_SCHEMA = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            xmlns:po="urn:ns-po"
            targetNamespace="urn:ns-po"
            elementFormDefault="qualified">
  <xsd:element name="order">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="sku" type="xsd:NMTOKEN" maxOccurs="unbounded"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
  <xsd:element name="refund">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="sku" type="xsd:NMTOKEN"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>
"""

VALID = '<o xmlns="urn:ns-po"><sku>A1</sku></o>'.replace("<o ", "<order ").replace(
    "</o>", "</order>"
)
INVALID = '<order xmlns="urn:ns-po"><bogus/></order>'


class TestTypedLayerBoundary:
    def test_bind_succeeds_and_exposes_interfaces(self):
        binding = bind(NS_SCHEMA)
        assert binding.schema.uses_namespaces
        assert "{urn:ns-po}order" in binding.schema.elements
        assert binding.idl()

    def test_from_dom_refuses_namespaced_schemas(self):
        binding = bind(NS_SCHEMA)
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            binding.from_dom(VALID)
        assert "streaming" in str(excinfo.value)

    def test_fused_and_table_ingest_refuse_namespaced_schemas(self):
        binding = bind(NS_SCHEMA)
        with pytest.raises(UnsupportedFeatureError):
            fused_parse(binding, VALID)
        with pytest.raises(UnsupportedFeatureError):
            table_parse(binding, VALID)


def _write_corpus(tmp_path, documents):
    paths = []
    for name, text in documents:
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        paths.append(path)
    return paths


class TestNamespacedBulk:
    def test_bulk_routes_through_streaming(self, tmp_path):
        paths = _write_corpus(
            tmp_path, [("good.xml", VALID), ("bad.xml", INVALID)]
        )
        report = validate_files(NS_SCHEMA, paths)
        summary = report["summary"]
        assert summary["documents"] == 2
        assert summary["valid"] == 1
        assert summary["invalid"] == 1
        # Streaming verdicts are neither fused nor fallback.
        assert summary["fused"] == 0
        by_name = {
            os.path.basename(record["path"]): record
            for record in report["files"]
        }
        assert by_name["good.xml"]["valid"] is True
        assert by_name["good.xml"]["fused"] is None
        assert "{urn:ns-po}" in by_name["bad.xml"]["error"]

    def test_bulk_parallel_agrees_with_inline(self, tmp_path):
        paths = _write_corpus(
            tmp_path, [("good.xml", VALID), ("bad.xml", INVALID)]
        )
        inline = validate_files(NS_SCHEMA, paths)
        parallel = validate_files(NS_SCHEMA, paths, jobs=2)
        strip = lambda report: [
            {k: r[k] for k in ("valid", "error", "error_type")}
            for r in sorted(report["files"], key=lambda r: r["path"])
        ]
        assert strip(inline) == strip(parallel)


class TestLazyBulk:
    def test_lazy_single_root_subset(self, tmp_path):
        from repro import obs

        paths = _write_corpus(
            tmp_path,
            [("a.xml", VALID), ("b.xml", VALID), ("bad.xml", INVALID)],
        )
        obs.reset()
        obs.enable()
        try:
            report = validate_files(NS_SCHEMA, paths, lazy=True)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        summary = report["summary"]
        assert summary["valid"] == 2
        assert summary["invalid"] == 1
        assert counters.get("ingest.bulk.lazy{outcome=subset,roots=1}") == 1

    def test_lazy_verdicts_match_full_bind(self, tmp_path):
        paths = _write_corpus(
            tmp_path, [("good.xml", VALID), ("bad.xml", INVALID)]
        )
        full = validate_files(NS_SCHEMA, paths)
        lazy = validate_files(NS_SCHEMA, paths, lazy=True)
        strip = lambda report: [
            {k: r[k] for k in ("valid", "error", "error_type")}
            for r in sorted(report["files"], key=lambda r: r["path"])
        ]
        assert strip(full) == strip(lazy)

    def test_unsniffable_document_falls_back_to_full_bind(self, tmp_path):
        from repro import obs

        paths = _write_corpus(
            tmp_path,
            [("good.xml", VALID), ("junk.xml", "not xml at all")],
        )
        obs.reset()
        obs.enable()
        try:
            report = validate_files(NS_SCHEMA, paths, lazy=True)
            lazy_counters = [
                key
                for key in obs.snapshot()["counters"]
                if key.startswith("ingest.bulk.lazy")
            ]
        finally:
            obs.disable()
            obs.reset()
        assert lazy_counters
        assert all("outcome=full" in key for key in lazy_counters)
        assert report["summary"]["valid"] == 1
        assert report["summary"]["invalid"] == 1

"""The persistent validation pool: sharding, warm reuse, crash recovery.

Byte-identity with the inline runner is the load-bearing property —
every test that exercises a pool path compares its verdicts against a
``jobs=1`` run of the same corpus.  The crash tests use the
``REPRO_POOL_CRASH_ONCE`` hook (a worker ``os._exit``s the first time
it sees a marked path), so a requeued batch *succeeds* on the sibling
worker instead of killing the pool one worker at a time.
"""

import os
import signal
import time

import pytest

from repro.errors import ReproError
from repro.ingest import HashRing, ValidationPool, auto_batch_size, validate_files
from repro.ingest.pool import CRASH_ENV
from repro.schemas import PURCHASE_ORDER_DOCUMENT, PURCHASE_ORDER_SCHEMA
from repro.schemas.purchase_order import PURCHASE_ORDER_INVALID_DOCUMENTS


@pytest.fixture()
def corpus(tmp_path):
    """Eight documents: six valid, one invalid, one unreadable."""
    paths = []
    for index in range(6):
        path = tmp_path / f"ok{index}.xml"
        path.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        paths.append(path)
    bad = tmp_path / "bad.xml"
    bad.write_text(
        PURCHASE_ORDER_INVALID_DOCUMENTS["bad-sku"], encoding="utf-8"
    )
    paths.append(bad)
    paths.append(tmp_path / "missing.xml")  # never created
    return paths


def verdicts(report):
    """The order-independent, timing-independent view of a report."""
    return [
        {
            key: record[key]
            for key in ("path", "valid", "error", "error_type", "fused")
        }
        for record in report["files"]
    ]


class TestHashRing:
    def test_lookup_is_deterministic(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        keys = [f"/corpus/doc{index}.xml" for index in range(200)]
        assert [first.lookup(key) for key in keys] == [
            second.lookup(key) for key in keys
        ]

    def test_keys_spread_over_all_workers(self):
        ring = HashRing(range(4))
        keys = [f"/corpus/doc{index}.xml" for index in range(400)]
        owners = {ring.lookup(key) for key in keys}
        assert owners == {0, 1, 2, 3}

    def test_removal_moves_only_the_dead_workers_keys(self):
        ring = HashRing(range(4))
        keys = [f"/corpus/doc{index}.xml" for index in range(400)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(2)
        after = {key: ring.lookup(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Every moved key belonged to the removed worker, and none of
        # them landed back on it — the survivors' shards are untouched.
        assert moved, "worker 2 owned nothing out of 400 keys?"
        assert all(before[key] == 2 for key in moved)
        assert all(owner != 2 for owner in after.values())

    def test_empty_ring_raises(self):
        ring = HashRing([7])
        ring.remove(7)
        with pytest.raises(ReproError, match="no live workers"):
            ring.lookup("/any.xml")

    def test_membership_bookkeeping(self):
        ring = HashRing()
        assert not ring and len(ring) == 0
        ring.add(1)
        ring.add(1)  # idempotent
        assert ring.members == frozenset({1})
        ring.remove(9)  # unknown: no-op
        assert len(ring) == 1


class TestAutoBatchSize:
    def test_four_batches_per_worker(self):
        assert auto_batch_size(100, 4) == 6
        assert auto_batch_size(40, 2) == 5
        assert auto_batch_size(8, 2) == 1

    def test_floors_at_one(self):
        assert auto_batch_size(1, 4) == 1
        assert auto_batch_size(0, 4) == 1
        assert auto_batch_size(10, 0) == 2  # degenerate worker count


class TestPooledVerdicts:
    def test_pooled_matches_inline_exactly(self, corpus):
        inline = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        pooled = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False
        )
        assert verdicts(pooled) == verdicts(inline)
        assert pooled["pool"]["completed"] == pooled["pool"]["batches"]
        assert pooled["pool"]["requeued"] == 0
        assert pooled["batch_size"] == auto_batch_size(len(corpus), 2)

    def test_explicit_batch_size_is_respected(self, corpus):
        inline = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        pooled = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False,
            batch_size=1,
        )
        assert pooled["batch_size"] == 1
        assert pooled["pool"]["batches"] == len(corpus)
        assert verdicts(pooled) == verdicts(inline)

    def test_inline_report_has_no_pool_section(self, corpus):
        report = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        assert report["batch_size"] is None
        assert "pool" not in report

    def test_shared_pool_is_reused_and_left_open(self, corpus, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ValidationPool(
            PURCHASE_ORDER_SCHEMA, 2, cache_dir=cache_dir
        ) as pool:
            first = validate_files(
                PURCHASE_ORDER_SCHEMA, corpus, cache_dir=cache_dir, pool=pool
            )
            second = validate_files(
                PURCHASE_ORDER_SCHEMA, corpus, cache_dir=cache_dir, pool=pool
            )
            # The pool survived the first call and accumulated stats.
            assert second["pool"]["batches"] > first["pool"]["batches"]
            assert verdicts(second) == verdicts(first)
            # Same documents, same schema: the second run answers from
            # the (worker-local + persistent) verdict cache.
            assert second["summary"]["cached"] == 7

    def test_pool_param_overrides_jobs(self, corpus):
        with ValidationPool(PURCHASE_ORDER_SCHEMA, 2) as pool:
            report = validate_files(
                PURCHASE_ORDER_SCHEMA, corpus, jobs=5, pool=pool
            )
            assert report["jobs"] == 2
            assert report["jobs_requested"] == 5

    def test_sharding_routes_a_path_to_its_worker(self, corpus):
        with ValidationPool(PURCHASE_ORDER_SCHEMA, 2) as pool:
            shards = {pool.shard_of(path) for path in corpus}
            assert shards <= {0, 1}
            # Deterministic: asking twice answers the same.
            assert [pool.shard_of(p) for p in corpus] == [
                pool.shard_of(p) for p in corpus
            ]

    def test_submit_text_verdict_matches_streaming_validator(self):
        from repro.core import bind
        from repro.errors import XmlSyntaxError
        from repro.xsd import StreamingValidator
        from repro.xsd.stream import error_entry

        bad = PURCHASE_ORDER_DOCUMENT.replace(
            "<city>Mill Valley</city>", "<bogus>x</bogus>", 1
        )
        validator = StreamingValidator(bind(PURCHASE_ORDER_SCHEMA).schema)

        def inline(text):
            try:
                errors = validator.validate_text(text)
            except XmlSyntaxError as error:
                errors = [error]
            return {
                "valid": not errors,
                "errors": [error_entry(error) for error in errors],
            }

        with ValidationPool(PURCHASE_ORDER_SCHEMA, 1) as pool:
            for text in (PURCHASE_ORDER_DOCUMENT, bad, "<a><b></a>"):
                assert pool.submit_text(text).result(timeout=30) == inline(
                    text
                )

    def test_submit_after_close_raises(self):
        pool = ValidationPool(PURCHASE_ORDER_SCHEMA, 1)
        pool.close()
        with pytest.raises(ReproError, match="closed"):
            pool.submit_text("<a/>")

    def test_unbindable_schema_fails_in_the_parent(self, tmp_path):
        with pytest.raises(ReproError, match="not-a-schema"):
            ValidationPool("<not-a-schema/>", 2)


class TestCrashRecovery:
    def test_killed_worker_batch_is_requeued(
        self, corpus, tmp_path, monkeypatch
    ):
        inline = validate_files(PURCHASE_ORDER_SCHEMA, corpus, jobs=1)
        # Any worker that picks up a batch containing a marked path dies
        # hard exactly once (per document); the sibling finishes it.
        monkeypatch.setenv(CRASH_ENV, "ok3")
        pooled = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False,
            batch_size=len(corpus),  # one batch per shard
        )
        assert verdicts(pooled) == verdicts(inline)
        assert pooled["pool"]["workers_lost"] >= 1
        assert pooled["pool"]["requeued"] >= 1
        assert pooled["pool"]["live_workers"] < pooled["pool"]["workers"]

    def test_crash_counters_land_in_obs(self, corpus, monkeypatch):
        from repro import obs

        monkeypatch.setenv(CRASH_ENV, "ok3")
        report = validate_files(
            PURCHASE_ORDER_SCHEMA, corpus, jobs=2, clamp_jobs=False,
            batch_size=len(corpus), collect_obs=True,
        )
        counters = report["obs"]["counters"]
        lost = sum(
            count
            for key, count in counters.items()
            if key.startswith("ingest.pool.worker_lost")
        )
        requeued = sum(
            count
            for key, count in counters.items()
            if key.startswith("ingest.pool.requeued")
        )
        assert lost >= 1
        assert requeued >= 1
        obs.disable()
        obs.reset()

    def test_all_workers_dead_fails_outstanding_futures(
        self, tmp_path, monkeypatch
    ):
        doc = tmp_path / "doomed-ok.xml"
        doc.write_text(PURCHASE_ORDER_DOCUMENT, encoding="utf-8")
        monkeypatch.setenv(CRASH_ENV, "doomed")
        with ValidationPool(PURCHASE_ORDER_SCHEMA, 1) as pool:
            future = pool.submit_batch([doc])
            with pytest.raises(ReproError, match="worker\\(s\\) died"):
                future.result(timeout=30)
            # The ring is empty: new submissions fail immediately.
            with pytest.raises(ReproError, match="no live workers"):
                pool.submit_batch([doc])


class TestShutdown:
    def test_close_drains_queued_batches(self, corpus):
        pool = ValidationPool(PURCHASE_ORDER_SCHEMA, 2)
        futures = [pool.submit_batch([path]) for path in corpus]
        pool.close()  # drain=True: everything submitted still resolves
        records = [future.result(timeout=5) for future in futures]
        assert [r[0]["path"] for r in records] == [
            os.fspath(path) for path in corpus
        ]

    def test_sigterm_lets_workers_drain_their_queues(self, corpus):
        pool = ValidationPool(PURCHASE_ORDER_SCHEMA, 2)
        try:
            futures = [pool.submit_batch([path]) for path in corpus]
            for worker in pool._workers.values():
                os.kill(worker.process.pid, signal.SIGTERM)
            # Every batch submitted before the signal still answers.
            records = [future.result(timeout=30) for future in futures]
            assert all(len(batch) == 1 for batch in records)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if not any(
                    worker.process.is_alive()
                    for worker in pool._workers.values()
                ):
                    break
                time.sleep(0.05)
            assert not any(
                worker.process.is_alive()
                for worker in pool._workers.values()
            ), "SIGTERMed workers must exit once their queues are dry"
        finally:
            pool.close(drain=False)

"""The CI bench-gate script must actually gate.

The acceptance criterion for the gate is negative: feed it a synthetic
artifact that violates a floor and it must fail.  These tests exercise
``scripts/check_bench.py`` against temporary artifact trees — passing
numbers, violations, missing artifacts, quick-mode floor selection,
and ``skip_if`` waivers.
"""

import importlib.util
import json
import os

import pytest

SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "scripts", "check_bench.py"
)

spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
check_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_bench)

FLOORS = {
    "speed": {
        "artifact": "BENCH_speed.json",
        "path": "scenario:a.speedup",
        "floor": 3.0,
        "quick_floor": 1.5,
    },
    "rps": {
        "artifact": "BENCH_serve.json",
        "path": "serve:x.requests_per_sec",
        "floor": 200,
    },
}


def write_artifact(directory, filename, payload):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, filename), "w") as handle:
        json.dump(payload, handle)


@pytest.fixture
def artifacts(tmp_path):
    """A passing artifact tree, nested the way download-artifact does."""
    write_artifact(
        tmp_path / "BENCH_speed.json",
        "BENCH_speed.json",
        {"scenario:a": {"speedup": 4.2}},
    )
    write_artifact(
        tmp_path / "BENCH_serve.json",
        "BENCH_serve.json",
        {"serve:x": {"requests_per_sec": 5000.0}},
    )
    return tmp_path


class TestGate:
    def test_all_floors_clear(self, artifacts):
        assert check_bench.check_artifacts(FLOORS, str(artifacts)) == ([], [])

    def test_floor_violation_fails(self, artifacts):
        write_artifact(
            artifacts / "BENCH_speed.json",
            "BENCH_speed.json",
            {"scenario:a": {"speedup": 2.0}},
        )
        problems, skipped = check_bench.check_artifacts(
            FLOORS, str(artifacts)
        )
        assert skipped == []
        assert len(problems) == 1
        assert "speed" in problems[0]
        assert "2.0 < floor 3.0" in problems[0]

    def test_missing_artifact_fails(self, artifacts):
        os.remove(artifacts / "BENCH_serve.json" / "BENCH_serve.json")
        problems, _skipped = check_bench.check_artifacts(
            FLOORS, str(artifacts)
        )
        assert len(problems) == 1
        assert "BENCH_serve.json not found" in problems[0]

    def test_missing_metric_fails(self, artifacts):
        write_artifact(
            artifacts / "BENCH_serve.json",
            "BENCH_serve.json",
            {"serve:x": {"wrong_key": 1}},
        )
        problems, _skipped = check_bench.check_artifacts(
            FLOORS, str(artifacts)
        )
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_quick_mode_selects_relaxed_floor(self, artifacts):
        # 2.0 violates the full floor (3.0) but clears quick (1.5) —
        # the _meta marker must switch which one is enforced.
        write_artifact(
            artifacts / "BENCH_speed.json",
            "BENCH_speed.json",
            {"scenario:a": {"speedup": 2.0}, "_meta": {"quick": True}},
        )
        assert check_bench.check_artifacts(FLOORS, str(artifacts)) == (
            [], []
        )

    def test_quick_mode_without_quick_floor_keeps_full(self, artifacts):
        write_artifact(
            artifacts / "BENCH_serve.json",
            "BENCH_serve.json",
            {"serve:x": {"requests_per_sec": 100}, "_meta": {"quick": True}},
        )
        problems, _skipped = check_bench.check_artifacts(
            FLOORS, str(artifacts)
        )
        assert len(problems) == 1
        assert "100 < floor 200" in problems[0]

    def test_main_exit_codes(self, artifacts, tmp_path, monkeypatch, capsys):
        registry = tmp_path / "floors.json"
        registry.write_text(json.dumps(FLOORS))
        monkeypatch.setattr(check_bench, "FLOORS_PATH", str(registry))

        assert check_bench.main(["check_bench", str(artifacts)]) == 0
        assert "all 2 floors clear" in capsys.readouterr().out

        write_artifact(
            artifacts / "BENCH_speed.json",
            "BENCH_speed.json",
            {"scenario:a": {"speedup": 0.1}},
        )
        assert check_bench.main(["check_bench", str(artifacts)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_real_registry_is_well_formed(self):
        with open(check_bench.FLOORS_PATH) as handle:
            floors = json.load(handle)
        assert len(floors) >= 8
        for name, entry in floors.items():
            assert entry["artifact"].startswith("BENCH_"), name
            assert entry["floor"] > 0, name
            # Dotted path: scenario key + metric name at minimum.
            assert "." in entry["path"], name
            if "quick_floor" in entry:
                assert entry["quick_floor"] <= entry["floor"], name


SKIP_FLOORS = {
    "scaling": {
        "artifact": "BENCH_scaling.json",
        "path": "bulk.scaling",
        "floor": 2.5,
        "skip_if": "bulk.floor_skipped",
    },
}


class TestSkipMarkers:
    """``skip_if``: a benchmark may waive its own floor, loudly."""

    def test_truthy_marker_waives_the_floor(self, tmp_path):
        write_artifact(
            tmp_path / "a",
            "BENCH_scaling.json",
            {
                "bulk": {
                    "scaling": 0.9,
                    "floor_skipped": True,
                    "floor_skip_reason": "needs >= 4 CPUs (have 1)",
                }
            },
        )
        problems, skipped = check_bench.check_artifacts(
            SKIP_FLOORS, str(tmp_path)
        )
        assert problems == []
        assert len(skipped) == 1
        assert "waived by bulk.floor_skipped" in skipped[0]
        assert "needs >= 4 CPUs" in skipped[0]

    def test_false_marker_keeps_the_floor(self, tmp_path):
        write_artifact(
            tmp_path / "a",
            "BENCH_scaling.json",
            {"bulk": {"scaling": 0.9, "floor_skipped": False}},
        )
        problems, skipped = check_bench.check_artifacts(
            SKIP_FLOORS, str(tmp_path)
        )
        assert skipped == []
        assert len(problems) == 1
        assert "0.9 < floor 2.5" in problems[0]

    def test_missing_artifact_is_not_waivable(self, tmp_path):
        problems, skipped = check_bench.check_artifacts(
            SKIP_FLOORS, str(tmp_path)
        )
        assert skipped == []
        assert len(problems) == 1
        assert "not found" in problems[0]

    def test_main_reports_waivers_and_exits_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        registry = tmp_path / "floors.json"
        registry.write_text(json.dumps(SKIP_FLOORS))
        monkeypatch.setattr(check_bench, "FLOORS_PATH", str(registry))
        write_artifact(
            tmp_path / "artifacts",
            "BENCH_scaling.json",
            {"bulk": {"scaling": 0.9, "floor_skipped": True}},
        )
        code = check_bench.main(
            ["check_bench", str(tmp_path / "artifacts")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "skip scaling" in out
        assert "(1 waived)" in out



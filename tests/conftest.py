"""Shared fixtures: parsed schemas and bindings, built once per session."""

import pytest

from repro.core import bind
from repro.xsd import parse_schema
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA
from repro.schemas.variants import (
    ADDRESS_EXTENSION_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
    SUBSTITUTION_GROUP_SCHEMA,
)


@pytest.fixture(scope="session")
def po_schema():
    return parse_schema(PURCHASE_ORDER_SCHEMA)


@pytest.fixture(scope="session")
def po_binding():
    return bind(PURCHASE_ORDER_SCHEMA)


@pytest.fixture(scope="session")
def wml_binding():
    return bind(WML_SCHEMA)


@pytest.fixture(scope="session")
def choice_binding():
    return bind(PURCHASE_ORDER_CHOICE_SCHEMA)


@pytest.fixture(scope="session")
def subst_binding():
    return bind(SUBSTITUTION_GROUP_SCHEMA)


@pytest.fixture(scope="session")
def extension_binding():
    return bind(ADDRESS_EXTENSION_SCHEMA)


@pytest.fixture
def po_factory(po_binding):
    return po_binding.factory


@pytest.fixture
def full_po(po_factory):
    """A complete, valid purchase order element (Fig. 1 shape)."""
    f = po_factory
    return f.create_purchase_order(
        f.create_ship_to(
            f.create_name("Alice Smith"),
            f.create_street("123 Maple Street"),
            f.create_city("Mill Valley"),
            f.create_state("CA"),
            f.create_zip("90952"),
        ),
        f.create_bill_to(
            f.create_name("Robert Smith"),
            f.create_street("8 Oak Avenue"),
            f.create_city("Old Town"),
            f.create_state("PA"),
            f.create_zip("95819"),
        ),
        f.create_comment("Hurry, my lawn is going wild"),
        f.create_items(
            f.create_item(
                f.create_product_name("Lawnmower"),
                f.create_quantity(1),
                f.create_us_price("148.95"),
                f.create_comment("Confirm this is electric"),
                part_num="872-AA",
            ),
            f.create_item(
                f.create_product_name("Baby Monitor"),
                f.create_quantity(1),
                f.create_us_price("39.98"),
                f.create_ship_date("1999-05-21"),
                part_num="926-AA",
            ),
        ),
        order_date="1999-10-20",
    )

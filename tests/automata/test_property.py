"""Property-based tests: the Glushkov DFA agrees with Python's re."""

import re

from hypothesis import given, settings, strategies as st

from repro.automata import (
    Alternation,
    Epsilon,
    Regex,
    Repetition,
    Sequence,
    Symbol,
    UNBOUNDED,
    build_dfa,
)

_ALPHABET = "ab"


def _to_python_pattern(regex: Regex) -> str:
    if isinstance(regex, Epsilon):
        return ""
    if isinstance(regex, Symbol):
        return regex.payload
    if isinstance(regex, Sequence):
        return "".join(f"(?:{_to_python_pattern(p)})" for p in regex.parts)
    if isinstance(regex, Alternation):
        inner = "|".join(
            f"(?:{_to_python_pattern(a)})" for a in regex.alternatives
        )
        return f"(?:{inner})"
    assert isinstance(regex, Repetition)
    child = f"(?:{_to_python_pattern(regex.child)})"
    if regex.max_occurs == UNBOUNDED:
        return f"{child}{{{regex.min_occurs},}}"
    return f"{child}{{{regex.min_occurs},{regex.max_occurs}}}"


def _regexes(depth: int):
    if depth == 0:
        return st.sampled_from(list(_ALPHABET)).map(Symbol)
    sub = _regexes(depth - 1)
    return st.one_of(
        st.sampled_from(list(_ALPHABET)).map(Symbol),
        st.lists(sub, min_size=1, max_size=3).map(Sequence),
        st.lists(sub, min_size=1, max_size=3).map(Alternation),
        st.tuples(sub, st.integers(0, 2), st.integers(0, 3)).map(
            lambda t: Repetition(t[0], t[1], max(t[1], t[2]))
        ),
        st.tuples(sub, st.integers(0, 2)).map(
            lambda t: Repetition(t[0], t[1], UNBOUNDED)
        ),
    )


@settings(max_examples=200, deadline=None)
@given(
    regex=_regexes(2),
    word=st.text(alphabet=_ALPHABET, max_size=8),
)
def test_dfa_agrees_with_re(regex, word):
    """For every random regex and word, DFA acceptance == re.fullmatch."""
    dfa = build_dfa(regex, position_budget=100_000)
    pattern = re.compile(_to_python_pattern(regex))
    expected = pattern.fullmatch(word) is not None
    assert dfa.accepts(list(word)) == expected


@settings(max_examples=100, deadline=None)
@given(regex=_regexes(2))
def test_nullability_matches_empty_word_acceptance(regex):
    dfa = build_dfa(regex, position_budget=100_000)
    assert dfa.accepts([]) == regex.nullable()


@settings(max_examples=100, deadline=None)
@given(
    regex=_regexes(1),
    word=st.text(alphabet=_ALPHABET, max_size=6),
)
def test_matcher_equals_batch_accepts(regex, word):
    dfa = build_dfa(regex, position_budget=100_000)
    matcher = dfa.matcher()
    stepped_ok = all(matcher.step(char) is not None for char in word)
    batch = dfa.accepts(list(word))
    assert batch == (stepped_ok and matcher.at_accepting_state())

"""Regex AST: nullability, expansion, position budget."""

import pytest

from repro.automata import (
    Alternation,
    Empty,
    Epsilon,
    Repetition,
    Sequence,
    Symbol,
    UNBOUNDED,
)
from repro.automata.rex import RegexTooLargeError, check_budget


class TestNullable:
    def test_epsilon_nullable(self):
        assert Epsilon().nullable()

    def test_empty_not_nullable(self):
        assert not Empty().nullable()

    def test_symbol_not_nullable(self):
        assert not Symbol("a").nullable()

    def test_sequence_nullable_iff_all(self):
        assert Sequence([Epsilon(), Symbol("a").optional()]).nullable()
        assert not Sequence([Symbol("a"), Epsilon()]).nullable()

    def test_alternation_nullable_iff_any(self):
        assert Alternation([Symbol("a"), Epsilon()]).nullable()
        assert not Alternation([Symbol("a"), Symbol("b")]).nullable()

    def test_repetition_with_zero_min(self):
        assert Symbol("a").star().nullable()
        assert Symbol("a").optional().nullable()
        assert not Symbol("a").plus().nullable()


class TestExpansion:
    def test_bounded_repeat_expands_to_copies(self):
        regex = Repetition(Symbol("a"), 2, 4)
        assert regex.count_positions() == 4
        expanded = regex.expanded()
        assert expanded.count_positions() == 4

    def test_min_unbounded_keeps_plus(self):
        regex = Repetition(Symbol("a"), 3, UNBOUNDED)
        expanded = regex.expanded()
        assert expanded.count_positions() == 3

    def test_fresh_positions_per_copy(self):
        symbol = Symbol("a")
        expanded = Repetition(symbol, 2, 2).expanded()
        positions = expanded.parts  # type: ignore[attr-defined]
        assert positions[0] is not positions[1]

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Repetition(Symbol("a"), -1, 2)
        with pytest.raises(ValueError):
            Repetition(Symbol("a"), 3, 2)


class TestBudget:
    def test_within_budget_passes(self):
        check_budget(Repetition(Symbol("a"), 0, 100).expanded(), budget=200)

    def test_over_budget_raises(self):
        regex = Repetition(Symbol("a"), 0, 5000).expanded()
        with pytest.raises(RegexTooLargeError):
            check_budget(regex, budget=4096)

"""Glushkov DFA construction and matching."""

import pytest

from repro.automata import (
    Alternation,
    Empty,
    Epsilon,
    NondeterminismError,
    Repetition,
    Sequence,
    Symbol,
    build_dfa,
)


def dfa_for(regex, **kwargs):
    return build_dfa(regex, **kwargs)


class TestAcceptance:
    def test_epsilon_accepts_only_empty(self):
        dfa = dfa_for(Epsilon())
        assert dfa.accepts([])
        assert not dfa.accepts(["a"])

    def test_empty_language_accepts_nothing(self):
        dfa = dfa_for(Empty())
        assert not dfa.accepts([])
        assert not dfa.accepts(["a"])

    def test_single_symbol(self):
        dfa = dfa_for(Symbol("a"))
        assert dfa.accepts(["a"])
        assert not dfa.accepts([])
        assert not dfa.accepts(["a", "a"])

    def test_sequence(self):
        dfa = dfa_for(Sequence([Symbol("a"), Symbol("b")]))
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["a"])
        assert not dfa.accepts(["b", "a"])

    def test_alternation(self):
        dfa = dfa_for(Alternation([Symbol("a"), Symbol("b")]))
        assert dfa.accepts(["a"])
        assert dfa.accepts(["b"])
        assert not dfa.accepts(["a", "b"])

    def test_star(self):
        dfa = dfa_for(Symbol("a").star())
        for count in range(4):
            assert dfa.accepts(["a"] * count)
        assert not dfa.accepts(["b"])

    def test_plus(self):
        dfa = dfa_for(Symbol("a").plus())
        assert not dfa.accepts([])
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "a", "a"])

    def test_bounded_repetition(self):
        dfa = dfa_for(Repetition(Symbol("a"), 2, 3))
        assert not dfa.accepts(["a"])
        assert dfa.accepts(["a", "a"])
        assert dfa.accepts(["a", "a", "a"])
        assert not dfa.accepts(["a", "a", "a", "a"])

    def test_purchase_order_shape(self):
        # shipTo billTo comment? items — the Fig. 2 content model.
        regex = Sequence(
            [
                Symbol("shipTo"),
                Symbol("billTo"),
                Symbol("comment").optional(),
                Symbol("items"),
            ]
        )
        dfa = dfa_for(regex)
        assert dfa.accepts(["shipTo", "billTo", "comment", "items"])
        assert dfa.accepts(["shipTo", "billTo", "items"])
        assert not dfa.accepts(["billTo", "shipTo", "items"])
        assert not dfa.accepts(["shipTo", "billTo", "comment"])

    def test_nested_choice_star(self):
        # (a | b c)* d
        regex = Sequence(
            [
                Alternation(
                    [Symbol("a"), Sequence([Symbol("b"), Symbol("c")])]
                ).star(),
                Symbol("d"),
            ]
        )
        dfa = dfa_for(regex)
        assert dfa.accepts(["d"])
        assert dfa.accepts(["a", "d"])
        assert dfa.accepts(["b", "c", "a", "d"])
        assert not dfa.accepts(["b", "d"])


class TestMatcher:
    def test_stepwise_matching_with_payloads(self):
        class Declaration:
            def __init__(self, name):
                self.name = name

        a, b = Declaration("a"), Declaration("b")
        dfa = build_dfa(
            Sequence([Symbol(a), Symbol(b).star()]),
            key=lambda declaration: declaration.name,
        )
        matcher = dfa.matcher()
        assert matcher.step("a") is a
        assert matcher.step("b") is b
        assert matcher.step("b") is b
        assert matcher.at_accepting_state()

    def test_failed_step_preserves_state(self):
        dfa = build_dfa(Sequence([Symbol("a"), Symbol("b")]))
        matcher = dfa.matcher()
        matcher.step("a")
        assert matcher.step("z") is None
        assert matcher.expected() == ["b"]
        assert matcher.step("b") == "b"

    def test_reset(self):
        dfa = build_dfa(Symbol("a"))
        matcher = dfa.matcher()
        matcher.step("a")
        matcher.reset()
        assert matcher.step("a") == "a"


class TestDeterminismCheck:
    def test_ambiguous_choice_detected(self):
        # (a b?) | (a c): after 'a' two particles compete.
        regex = Alternation(
            [
                Sequence([Symbol("a"), Symbol("b").optional()]),
                Sequence([Symbol("a"), Symbol("c")]),
            ]
        )
        with pytest.raises(NondeterminismError):
            build_dfa(regex, require_deterministic=True)

    def test_deterministic_model_accepted(self):
        regex = Sequence(
            [Symbol("a"), Alternation([Symbol("b"), Symbol("c")]).optional()]
        )
        build_dfa(regex, require_deterministic=True)

    def test_classic_nondeterministic_star(self):
        # (a? a) is ambiguous on its first 'a'.
        regex = Sequence([Symbol("a").optional(), Symbol("a")])
        with pytest.raises(NondeterminismError):
            build_dfa(regex, require_deterministic=True)

    def test_without_flag_ambiguity_is_resolved(self):
        regex = Sequence([Symbol("a").optional(), Symbol("a")])
        dfa = build_dfa(regex)
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts([])

"""Flat transition tables against their object-DFA twins.

Every :class:`DfaTable` is compiled *from* a :class:`Dfa` and must be
observationally identical to it: same state numbering, same acceptance,
same payload attribution, and the same expected-key ordering on error
paths.  The parity here is exhaustive over both synthetic regexes and
every content model of the bundled schemas.
"""

import pickle

import pytest

from repro.automata import (
    Alternation,
    DfaTable,
    Repetition,
    Sequence,
    Symbol,
    build_dfa,
)
from repro.core import bind
from repro.schemas import PURCHASE_ORDER_SCHEMA, XHTML_SUBSET_SCHEMA
from repro.xsd.components import ComplexType, ContentType

REGEXES = {
    "sequence": Sequence([Symbol("a"), Symbol("b"), Symbol("c")]),
    "alternation": Alternation([Symbol("a"), Symbol("b")]),
    "star": Symbol("a").star(),
    "plus-in-seq": Sequence([Symbol("a").plus(), Symbol("b")]),
    "optional": Sequence([Repetition(Symbol("a"), 0, 1), Symbol("b")]),
    "nested": Sequence(
        [
            Alternation([Symbol("a"), Symbol("b")]).star(),
            Symbol("c"),
            Repetition(Symbol("d"), 0, 1),
        ]
    ),
}

WORDS = [
    [],
    ["a"],
    ["b"],
    ["c"],
    ["a", "b"],
    ["a", "b", "c"],
    ["a", "a", "b"],
    ["b", "a"],
    ["a", "b", "c", "d"],
    ["c"],
    ["c", "d"],
    ["d"],
    ["a", "x"],
    ["x"],
]


def _assert_twin(dfa, table):
    """Exhaustive observational parity between a Dfa and its table."""
    assert table.state_count() == len(dfa.transitions)
    alphabet = set(table.symbols) | {"x"}
    for state in range(len(dfa.transitions)):
        assert table.is_accepting(state) == (state in dfa.accepting)
        assert table.expected_keys(state) == dfa.expected_keys(state)
        for key in alphabet:
            expected = dfa.transitions[state].get(key)
            stepped = table.step(state, key)
            if expected is None:
                assert stepped is None
            else:
                target, payload = expected
                assert stepped is not None
                assert stepped[0] == target
                assert stepped[1] is payload


class TestSyntheticParity:
    @pytest.mark.parametrize("name", sorted(REGEXES))
    def test_twin_of_object_dfa(self, name):
        dfa = build_dfa(REGEXES[name])
        _assert_twin(dfa, DfaTable.from_dfa(dfa))

    @pytest.mark.parametrize("name", sorted(REGEXES))
    def test_accepts_agrees(self, name):
        dfa = build_dfa(REGEXES[name])
        table = DfaTable.from_dfa(dfa)
        for word in WORDS:
            assert table.accepts(word) == dfa.accepts(word), word

    @pytest.mark.parametrize("name", sorted(REGEXES))
    def test_matcher_walks_identically(self, name):
        dfa = build_dfa(REGEXES[name])
        table = DfaTable.from_dfa(dfa)
        for word in WORDS:
            object_matcher = dfa.matcher()
            table_matcher = table.matcher()
            for key in word:
                object_step = object_matcher.step(key)
                table_step = table_matcher.step(key)
                assert (object_step is None) == (table_step is None)
                if object_step is not None:
                    assert table_step is object_step
                # A failed step leaves both matchers in place.
                assert table_matcher.state == object_matcher.state
                assert (
                    table_matcher.at_accepting_state()
                    == object_matcher.at_accepting_state()
                )
                assert table_matcher.expected() == object_matcher.expected()

    def test_matcher_reset(self):
        table = DfaTable.from_dfa(build_dfa(REGEXES["sequence"]))
        matcher = table.matcher()
        assert matcher.step("a") is not None
        assert matcher.state != 0
        matcher.reset()
        assert matcher.state == 0


class TestSchemaParity:
    """Every content model of the bundled schemas, table vs object."""

    @pytest.mark.parametrize(
        "schema_text", [PURCHASE_ORDER_SCHEMA, XHTML_SUBSET_SCHEMA],
        ids=["purchase-order", "xhtml-subset"],
    )
    def test_every_content_model(self, schema_text):
        schema = bind(schema_text).schema
        checked = 0
        for type_definition in schema.types.values():
            if not isinstance(type_definition, ComplexType):
                continue
            if type_definition.content_type not in (
                ContentType.ELEMENT_ONLY,
                ContentType.MIXED,
            ):
                continue
            _assert_twin(
                schema.content_dfa(type_definition),
                schema.content_table(type_definition),
            )
            checked += 1
        assert checked, "schema exposed no structured content models"

    def test_table_is_cached(self):
        schema = bind(PURCHASE_ORDER_SCHEMA).schema
        for type_definition in schema.types.values():
            if (
                isinstance(type_definition, ComplexType)
                and type_definition.content_type is ContentType.ELEMENT_ONLY
            ):
                first = schema.content_table(type_definition)
                assert schema.content_table(type_definition) is first
                return
        pytest.fail("no element-only type found")


class TestPickling:
    def test_round_trip_preserves_behaviour(self):
        dfa = build_dfa(REGEXES["nested"])
        table = DfaTable.from_dfa(dfa)
        clone = pickle.loads(pickle.dumps(table))
        assert clone.symbols == table.symbols
        assert clone.nxt == table.nxt
        assert clone.pay == table.pay
        assert clone.accepting == table.accepting
        for word in WORDS:
            assert clone.accepts(word) == table.accepts(word)
        for state in range(table.state_count()):
            assert clone.expected_keys(state) == table.expected_keys(state)

    def test_memoized_expected_keys_not_pickled(self):
        table = DfaTable.from_dfa(build_dfa(REGEXES["sequence"]))
        table.expected_keys(0)  # populate the memo
        clone = pickle.loads(pickle.dumps(table))
        assert clone._expected == {}

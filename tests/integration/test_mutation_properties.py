"""Stateful property test: the validity invariant survives any mutation
sequence.

Hypothesis drives random sequences of mutation attempts (legal and
illegal) against a valid purchase order.  After *every* step — whether
the operation succeeded or was rejected and rolled back — the tree must
still satisfy the independent runtime validator.  This is the strongest
form of the paper's claim: there is no reachable invalid state.
"""

import string

from hypothesis import given, settings, strategies as st

from repro import bind, validate
from repro.errors import ReproError
from repro.schemas import PURCHASE_ORDER_SCHEMA

_BINDING = bind(PURCHASE_ORDER_SCHEMA)
_FACTORY = _BINDING.factory

_words = st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=12)
_skus = st.from_regex(r"[0-9]{3}-[A-Z]{2}", fullmatch=True)


def fresh_order():
    f = _FACTORY
    return f.create_purchase_order(
        f.create_ship_to(
            f.create_name("Alice"), f.create_street("s"),
            f.create_city("c"), f.create_state("CA"), f.create_zip("1"),
        ),
        f.create_bill_to(
            f.create_name("Bob"), f.create_street("s"),
            f.create_city("c"), f.create_state("PA"), f.create_zip("2"),
        ),
        f.create_comment("initial"),
        f.create_items(
            f.create_item(
                f.create_product_name("Widget"),
                f.create_quantity(1),
                f.create_us_price("9.99"),
                part_num="100-AA",
            )
        ),
        order_date="1999-10-20",
    )


def _operations(draw):
    """One random mutation attempt; may legitimately raise."""
    f = _FACTORY
    choice = draw(
        st.sampled_from(
            [
                "add_item",
                "add_bad_child",
                "remove_comment",
                "remove_ship_to",
                "set_good_date",
                "set_bad_date",
                "set_bad_quantity_attr",
                "replace_comment",
                "add_second_comment",
                "remove_random_item",
            ]
        )
    )
    return choice


@st.composite
def operation_sequences(draw):
    return [
        _operations(draw)
        for __ in range(draw(st.integers(min_value=1, max_value=12)))
    ]


def apply_operation(order, operation, draw_text, draw_sku):
    f = _FACTORY
    if operation == "add_item":
        order.items.add(
            f.create_item(
                f.create_product_name(draw_text),
                f.create_quantity(2),
                f.create_us_price("1.00"),
                part_num=draw_sku,
            )
        )
    elif operation == "add_bad_child":
        order.items.add(f.create_comment("not an item"))
    elif operation == "remove_comment":
        comment = order.comment
        if comment is not None:
            order.remove_child(comment)
    elif operation == "remove_ship_to":
        order.remove_child(order.ship_to)
    elif operation == "set_good_date":
        order.set_attribute("orderDate", "2000-01-01")
    elif operation == "set_bad_date":
        order.set_attribute("orderDate", "not-a-date")
    elif operation == "set_bad_quantity_attr":
        order.set_attribute("bogusAttribute", "x")
    elif operation == "replace_comment":
        comment = order.comment
        replacement = f.create_comment(draw_text)
        if comment is not None:
            order.replace_child(replacement, comment)
        else:
            order.insert_before(replacement, order.items)
    elif operation == "add_second_comment":
        order.add(f.create_comment("one too many"))
    elif operation == "remove_random_item":
        items = order.items.item_list
        if items:
            order.items.remove_child(items[-1])


@settings(max_examples=60, deadline=None)
@given(
    operations=operation_sequences(),
    text_value=_words,
    sku=_skus,
)
def test_no_mutation_sequence_reaches_an_invalid_state(
    operations, text_value, sku
):
    order = fresh_order()
    for operation in operations:
        try:
            apply_operation(order, operation, text_value, sku)
        except ReproError:
            pass  # rejected-and-rolled-back is a legal outcome
        # THE invariant: the live tree always validates.
        document_errors = validate(_snapshot(order), _BINDING.schema)
        assert document_errors == [], (operation, document_errors)


def _snapshot(order):
    """Reparse the serialized tree so validation sees a fresh document."""
    from repro import parse_document, serialize

    return parse_document(serialize(order))

"""Agreement between the two DTD-era checking paths.

The prior-work story has two implementations here: the classic DTD
*validator* (walks a finished DOM) and the DTD-derived V-DOM *binding*
(refuses to construct).  On the shared fault corpus their verdicts must
coincide — both see exactly the structural faults and both are blind to
the value-level ones.
"""

import pytest

from repro.dom import parse_document
from repro.dtd import DtdValidator, bind_dtd, parse_dtd
from repro.errors import VdomTypeError
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_DTD,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
)


@pytest.fixture(scope="module")
def dtd_validator():
    return DtdValidator(parse_dtd(PURCHASE_ORDER_DTD, root_name="purchaseOrder"))


@pytest.fixture(scope="module")
def dtd_binding():
    return bind_dtd(PURCHASE_ORDER_DTD)


def binding_accepts(binding, text: str) -> bool:
    try:
        binding.from_dom(parse_document(text).document_element)
    except VdomTypeError:
        return False
    return True


class TestAgreement:
    def test_valid_document_accepted_by_both(self, dtd_validator, dtd_binding):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        assert dtd_validator.validate(document) == []
        assert binding_accepts(dtd_binding, PURCHASE_ORDER_DOCUMENT)

    @pytest.mark.parametrize("fault", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_verdicts_agree_on_corpus(self, dtd_validator, dtd_binding, fault):
        text = PURCHASE_ORDER_INVALID_DOCUMENTS[fault]
        validator_rejects = bool(
            dtd_validator.validate(parse_document(text))
        )
        binding_rejects = not binding_accepts(dtd_binding, text)
        assert validator_rejects == binding_rejects, fault

    def test_both_blind_to_the_same_value_faults(
        self, dtd_validator, dtd_binding
    ):
        blind_validator = {
            fault
            for fault, text in PURCHASE_ORDER_INVALID_DOCUMENTS.items()
            if not dtd_validator.validate(parse_document(text))
        }
        blind_binding = {
            fault
            for fault, text in PURCHASE_ORDER_INVALID_DOCUMENTS.items()
            if binding_accepts(dtd_binding, text)
        }
        assert blind_validator == blind_binding == {
            "bad-date", "bad-price", "bad-quantity", "bad-sku",
        }

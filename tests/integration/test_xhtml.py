"""The paper's introduction example on the XHTML subset.

Sect. 1 shows a Java Server Page whose ``<TITLE>`` typo "still results
in a correct Java Server Page … although the program does not generate
correct Html."  These tests replay that exact story against the XHTML
subset schema: the server page ships the bug; the P-XML version cannot
even be written.
"""

import pytest

from repro import Template, bind, parse_document, serialize, validate
from repro.errors import PxmlStaticError
from repro.serverpages import ServerPage
from repro.schemas import XHTML_SUBSET_SCHEMA

#: The intro's "simple server page" (shape of the paper's first listing).
SIMPLE_PAGE = (
    "<html><head><title>A Simple Server Page</title></head>"
    "<body><h1>Departments</h1><ul>"
    "<% for dept in departments: %>"
    '<li><a href="<%= dept_url(dept) %>"><%= dept %></a></li>'
    "<% end %>"
    "</ul></body></html>"
)

#: The intro's "wrong server page": title misplaced into the body.
WRONG_PAGE = SIMPLE_PAGE.replace(
    "<h1>Departments</h1>", "<title>A Wrong Server Page</title><h1>Departments</h1>"
)

CONTEXT = {
    "departments": ["toys", "books"],
    "dept_url": lambda dept: f"/shop/{dept}",
}


@pytest.fixture(scope="module")
def xhtml_binding():
    return bind(XHTML_SUBSET_SCHEMA)


class TestIntroServerPage:
    def test_simple_page_happens_to_be_valid(self, xhtml_binding):
        output = ServerPage(SIMPLE_PAGE).render(**CONTEXT)
        document = parse_document(output)
        assert validate(document, xhtml_binding.schema) == []

    def test_wrong_page_is_accepted_and_ships_invalid_html(
        self, xhtml_binding
    ):
        """The paper's exact complaint, reproduced."""
        output = ServerPage(WRONG_PAGE).render(**CONTEXT)
        document = parse_document(output)  # well-formed
        errors = validate(document, xhtml_binding.schema)
        assert errors  # but invalid — found only by this optional step
        assert any("title" in str(error) for error in errors)


class TestIntroPxmlVersion:
    def test_valid_version_constructs(self, xhtml_binding):
        factory = xhtml_binding.factory
        item_template = Template(
            xhtml_binding, '<li><a href="$url$">$label:text$</a></li>'
        )
        ul = factory.create_ul(
            *[
                item_template.render(url=f"/shop/{dept}", label=dept)
                for dept in CONTEXT["departments"]
            ]
        )
        page = factory.create_html(
            factory.create_head(factory.create_title("A Simple Server Page")),
            factory.create_body(factory.create_h1("Departments"), ul),
        )
        output = serialize(xhtml_binding.document(page))
        assert validate(parse_document(output), xhtml_binding.schema) == []

    def test_wrong_version_cannot_be_written(self, xhtml_binding):
        """A title inside body is a static error, not a shipped bug."""
        with pytest.raises(PxmlStaticError):
            Template(
                xhtml_binding,
                "<body><title>A Wrong Server Page</title>"
                "<h1>Departments</h1></body>",
            )

    def test_structural_typo_rejected_statically(self, xhtml_binding):
        with pytest.raises(PxmlStaticError):
            Template(
                xhtml_binding,
                "<html><body><p>x</p></body>"
                "<head><title>t</title></head></html>",
            )


class TestXhtmlBindingSurface:
    def test_tables(self, xhtml_binding):
        factory = xhtml_binding.factory
        table = factory.create_table(
            factory.create_tr(
                factory.create_td("a"), factory.create_td("b")
            ),
        )
        assert serialize(table) == (
            "<table><tr><td>a</td><td>b</td></tr></table>"
        )

    def test_inline_nesting(self, xhtml_binding):
        factory = xhtml_binding.factory
        paragraph = factory.create_p(
            "mixed ",
            factory.create_b("bold"),
            " and ",
            factory.create_i("italic"),
        )
        assert serialize(paragraph) == (
            "<p>mixed <b>bold</b> and <i>italic</i></p>"
        )

    def test_required_href(self, xhtml_binding):
        from repro.errors import VdomTypeError

        with pytest.raises(VdomTypeError, match="href"):
            xhtml_binding.factory.create_a("no link target")

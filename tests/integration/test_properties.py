"""Property-based tests on the system invariants.

The headline invariant of the paper: *every tree V-DOM lets exist is
valid*.  Hypothesis builds random purchase orders through the typed API
and random mutations of the serialized form; the invariant and its
converse are checked against the independent runtime validator.
"""

import string

from hypothesis import given, settings, strategies as st

from repro import Template, bind, parse_document, serialize, validate
from repro.errors import VdomTypeError, XmlSyntaxError
from repro.schemas import PURCHASE_ORDER_SCHEMA

_BINDING = bind(PURCHASE_ORDER_SCHEMA)
_FACTORY = _BINDING.factory

_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .,'-", min_size=1, max_size=20
)
_sku = st.from_regex(r"[0-9]{3}-[A-Z]{2}", fullmatch=True)
_price = st.decimals(
    min_value=0, max_value=10_000, allow_nan=False, places=2
)
_quantity = st.integers(min_value=1, max_value=99)


@st.composite
def addresses(draw):
    return _FACTORY.create_ship_to(
        _FACTORY.create_name(draw(_text)),
        _FACTORY.create_street(draw(_text)),
        _FACTORY.create_city(draw(_text)),
        _FACTORY.create_state(draw(_text)),
        _FACTORY.create_zip(str(draw(st.integers(10000, 99999)))),
    )


@st.composite
def bill_addresses(draw):
    return _FACTORY.create_bill_to(
        _FACTORY.create_name(draw(_text)),
        _FACTORY.create_street(draw(_text)),
        _FACTORY.create_city(draw(_text)),
        _FACTORY.create_state(draw(_text)),
        _FACTORY.create_zip(str(draw(st.integers(10000, 99999)))),
    )


@st.composite
def items_elements(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    children = []
    for __ in range(count):
        children.append(
            _FACTORY.create_item(
                _FACTORY.create_product_name(draw(_text)),
                _FACTORY.create_quantity(draw(_quantity)),
                _FACTORY.create_us_price(str(draw(_price))),
                part_num=draw(_sku),
            )
        )
    return _FACTORY.create_items(*children)


@st.composite
def purchase_orders(draw):
    comment = None
    if draw(st.booleans()):
        comment = _FACTORY.create_comment(draw(_text))
    return _FACTORY.create_purchase_order(
        draw(addresses()),
        draw(bill_addresses()),
        comment,
        draw(items_elements()),
    )


@settings(max_examples=50, deadline=None)
@given(order=purchase_orders())
def test_every_constructible_tree_is_valid(order):
    """THE invariant: if V-DOM built it, the validator approves it."""
    document = _BINDING.document(order)
    assert validate(document, _BINDING.schema) == []


@settings(max_examples=50, deadline=None)
@given(order=purchase_orders())
def test_serialization_roundtrip_preserves_validity(order):
    text = serialize(_BINDING.document(order))
    reparsed = parse_document(text)
    assert validate(reparsed, _BINDING.schema) == []
    retyped = _BINDING.from_dom(reparsed.document_element)
    assert serialize(retyped) == serialize(order)


@settings(max_examples=50, deadline=None)
@given(order=purchase_orders(), data=st.data())
def test_random_tag_swap_is_never_silently_accepted(order, data):
    """Swapping two distinct child tags breaks validity — and both the
    validator and the unmarshaller agree."""
    text = serialize(_BINDING.document(order))
    tags = ["shipTo", "billTo", "items", "name", "street", "city"]
    source = data.draw(st.sampled_from(tags))
    target = data.draw(st.sampled_from([t for t in tags if t != source]))
    mutated = (
        text.replace(f"<{source}", f"<{target}", 1)
    )
    try:
        document = parse_document(mutated)
    except XmlSyntaxError:
        return  # mutation broke well-formedness: caught even earlier
    errors = validate(document, _BINDING.schema)
    if errors:
        try:
            _BINDING.from_dom(document.document_element)
        except VdomTypeError:
            return
        raise AssertionError("validator found errors but from_dom accepted")
    else:
        _BINDING.from_dom(document.document_element)


@settings(max_examples=30, deadline=None)
@given(value=st.integers(min_value=-200, max_value=300))
def test_quantity_boundary_agreement(value):
    """Construction-time and validation-time boundaries coincide."""
    in_range = 1 <= value < 100
    try:
        element = _FACTORY.create_quantity(value)
    except VdomTypeError:
        assert not in_range
    else:
        assert in_range
        assert element.value == value


@settings(max_examples=30, deadline=None)
@given(text_value=_text)
def test_template_render_matches_direct_construction(text_value):
    template = Template(_BINDING, "<comment>$c$</comment>")
    via_template = template.render(c=text_value)
    direct = _FACTORY.create_comment(text_value)
    assert serialize(via_template) == serialize(direct)

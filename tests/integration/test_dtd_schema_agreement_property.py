"""Property test: the DTD validator and the DTD→Schema conversion agree.

For random DTD content models and random child sequences, validating a
document directly against the DTD must give the same verdict as
validating it against the converted schema — the conversion preserves
the content-model language exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.dom import parse_document
from repro.dtd import DtdValidator, dtd_to_schema, parse_dtd
from repro.xsd import SchemaValidator

_LEAVES = ("a", "b", "c")
_OCCURS = ("", "?", "*", "+")


@st.composite
def particle_texts(draw, depth=2):
    """A random DTD 'children' particle as source text."""
    occurrence = draw(st.sampled_from(_OCCURS))
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES)) + occurrence
    connector = draw(st.sampled_from((", ", " | ")))
    count = draw(st.integers(min_value=1, max_value=3))
    children = [draw(particle_texts(depth=depth - 1)) for __ in range(count)]
    return "(" + connector.join(children) + ")" + occurrence


def build_dtd_text(particle: str) -> str:
    leaf_declarations = "".join(
        f"<!ELEMENT {name} (#PCDATA)>" for name in _LEAVES
    )
    return f"<!ELEMENT root ({particle})>{leaf_declarations}"


def build_document(children: list[str]) -> str:
    body = "".join(f"<{name}/>" for name in children)
    return f"<root>{body}</root>"


@settings(max_examples=150, deadline=None)
@given(
    particle=particle_texts(),
    children=st.lists(st.sampled_from(_LEAVES), max_size=6),
)
def test_dtd_and_converted_schema_agree(particle, children):
    dtd = parse_dtd(build_dtd_text(particle))
    document = parse_document(build_document(children))
    dtd_verdict = not DtdValidator(
        dtd, require_deterministic=False
    ).validate(document)
    schema = dtd_to_schema(dtd)
    schema_verdict = not SchemaValidator(schema).validate(document)
    assert dtd_verdict == schema_verdict, (
        particle,
        children,
        dtd_verdict,
        schema_verdict,
    )

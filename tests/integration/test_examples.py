"""Smoke-run every example script: the documented flows must keep working."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # every example narrates what it does


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "wml_directory",
        "purchase_order_webshop",
        "schema_evolution",
        "codegen_tour",
        "dtd_legacy",
        "query_transform_demo",
    } <= names


class TestExampleOutputs:
    """Key claims narrated by the examples hold in their output."""

    def _run(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / f"{name}.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        return completed.stdout

    def test_quickstart_rejections_narrated(self):
        output = self._run("quickstart")
        assert "rejected (quantity over the facet bound)" in output
        assert "runtime validator agrees: 0 errors" in output

    def test_wml_directory_shows_both_worlds(self):
        output = self._run("wml_directory")
        assert "a client parsing this page would explode" in output
        assert "static error" in output
        assert "factory.create_p(" in output  # the Fig. 11 code

    def test_query_transform_demo_narrates_static_rejection(self):
        output = self._run("query_transform_demo")
        assert output.count("rejected at definition time") == 4
        assert '<option value="p">Lawnmower</option>' in output

    def test_dtd_legacy_shows_the_gap(self):
        output = self._run("dtd_legacy")
        assert output.count("MISSED") == 4
        assert "caught       caught" in output

"""End-to-end pipeline tests: the whole Fig. 9 flow and agreement
between every layer of the stack."""

import pytest

from repro import (
    Template,
    generate_python_module,
    parse_document,
    preprocess_module,
    serialize,
    validate,
)
from repro.core.pygen import load_generated_module
from repro.errors import VdomTypeError
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
    WML_SCHEMA,
)


class TestSchemaToDocumentRoundtrip:
    def test_vdom_output_always_validates(self, po_binding, full_po):
        """Every tree V-DOM lets exist passes the runtime validator."""
        document = po_binding.document(full_po)
        assert validate(document, po_binding.schema) == []

    def test_unmarshal_marshal_identity(self, po_binding):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        typed = po_binding.from_dom(document.document_element)
        retyped = po_binding.from_dom(
            parse_document(
                serialize(po_binding.document(typed))
            ).document_element
        )
        assert serialize(typed) == serialize(retyped)

    @pytest.mark.parametrize("name", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS))
    def test_invalid_documents_cannot_be_unmarshalled(self, po_binding, name):
        document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[name])
        with pytest.raises(VdomTypeError):
            po_binding.from_dom(document.document_element)

    def test_typed_values_survive_roundtrip(self, po_binding):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        typed = po_binding.from_dom(document.document_element)
        import datetime
        import decimal

        assert typed.order_date == datetime.date(1999, 10, 20)
        first_item = typed.items.item_list[0]
        assert first_item.us_price.value == decimal.Decimal("148.95")
        assert first_item.quantity.value == 1


class TestGeneratedModulePipeline:
    def test_generated_module_agrees_with_dynamic_binding(self, po_binding):
        source = generate_python_module(PURCHASE_ORDER_SCHEMA)
        module = load_generated_module(source, "pipeline_generated")
        from_module = module.factory.create_comment("same")
        from_binding = po_binding.factory.create_comment("same")
        assert serialize(from_module) == serialize(from_binding)

    def test_template_through_generated_module(self):
        source = generate_python_module(WML_SCHEMA)
        module = load_generated_module(source, "pipeline_wml")
        template = Template(
            module.binding, '<option value="$v$">$t:text$</option>'
        )
        option = template.render(v="/x", t="x")
        assert serialize(option) == '<option value="/x">x</option>'


class TestPreprocessedProgramPipeline:
    PROGRAM = '''
from repro.core import bind
from repro.schemas import WML_SCHEMA

binding = bind(WML_SCHEMA)
factory = binding.factory

def directory_page(current, parent, subdirs):
    select = pxml(
        '<select name="directories">'
        '<option value="$parent$">..</option></select>'
    )
    for full, label in subdirs:
        select.add(pxml('<option value="$full$">$label:text$</option>'))
    return pxml("<p><b>$current:text$</b><br/>$select:select$<br/></p>")
'''

    def test_preprocessed_program_runs_and_validates(self, wml_binding):
        result = preprocess_module(self.PROGRAM, wml_binding)
        assert result.replaced == 3
        namespace: dict = {}
        exec(compile(result.source, "<program>", "exec"), namespace)
        page = namespace["directory_page"](
            "/workspace/media", "/workspace", [("/workspace/media/a", "a")]
        )
        rendered = serialize(page)
        assert rendered.count("<option") == 2
        program_binding = namespace["binding"]
        wml = program_binding.factory.create_wml(
            program_binding.factory.create_card(page)
        )
        document = parse_document(serialize(program_binding.document(wml)))
        assert validate(document, program_binding.schema) == []


class TestCli:
    def test_cli_idl(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "po.xsd"
        schema_path.write_text(PURCHASE_ORDER_SCHEMA)
        assert main(["idl", str(schema_path)]) == 0
        output = capsys.readouterr().out
        assert "interface purchaseOrderElement" in output

    def test_cli_python(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "po.xsd"
        schema_path.write_text(PURCHASE_ORDER_SCHEMA)
        assert main(["python", str(schema_path)]) == 0
        assert "SCHEMA_SOURCE" in capsys.readouterr().out

    def test_cli_validate_valid(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "po.xsd"
        schema_path.write_text(PURCHASE_ORDER_SCHEMA)
        document_path = tmp_path / "po.xml"
        document_path.write_text(PURCHASE_ORDER_DOCUMENT)
        assert main(["validate", str(schema_path), str(document_path)]) == 0

    def test_cli_validate_invalid(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "po.xsd"
        schema_path.write_text(PURCHASE_ORDER_SCHEMA)
        document_path = tmp_path / "po.xml"
        document_path.write_text(
            PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]
        )
        assert main(["validate", str(schema_path), str(document_path)]) == 1
        assert "maxExclusive" in capsys.readouterr().out

    def test_cli_preprocess(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "po.xsd"
        schema_path.write_text(PURCHASE_ORDER_SCHEMA)
        module_path = tmp_path / "app.py"
        module_path.write_text('c = pxml("<comment>x</comment>")\n')
        assert main(["preprocess", str(schema_path), str(module_path)]) == 0
        assert "__pxml_1" in capsys.readouterr().out

    def test_cli_reports_errors(self, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "bad.xsd"
        schema_path.write_text("<not-a-schema/>")
        assert main(["idl", str(schema_path)]) == 1
        assert "error" in capsys.readouterr().err

"""CLAIM-1: the error-detection-stage study.

The paper's central qualitative claim: with string templates / generic
DOM, schema violations surface only at runtime validation (or never);
with V-DOM they surface at construction; with P-XML at template
definition — before the program runs at all.  These tests pin the stage
for each approach on the same set of faults.
"""

import pytest

from repro import Template, parse_document, serialize, validate
from repro.errors import PxmlStaticError, VdomTypeError
from repro.serverpages import render_page
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
)


class TestStringTemplateStage:
    """Baseline 1: server pages — the fault ships silently."""

    def test_fault_passes_generation_and_parsing(self, po_binding):
        page = PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"].replace(
            "Lawnmower", "<%= product %>"
        )
        output = render_page(page, product="Lawnmower")
        document = parse_document(output)  # well-formed!
        # Only schema validation — a separate, optional step — notices:
        assert validate(document, po_binding.schema)


class TestGenericDomStage:
    """Baseline 2: generic DOM — building succeeds, validation fails."""

    def test_invalid_tree_constructible(self, po_binding):
        document = parse_document(
            PURCHASE_ORDER_INVALID_DOCUMENTS["wrong-element-order"]
        )
        # The generic DOM happily represents the invalid document...
        assert document.document_element is not None
        # ...and only the post-hoc validator reports it.
        assert validate(document, po_binding.schema)

    def test_dom_allows_arbitrary_mutation(self, po_binding):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        root = document.document_element
        root.append_child(document.create_element("bogus"))
        assert validate(document, po_binding.schema)


class TestVdomStage:
    """V-DOM: the fault is impossible to construct."""

    def test_construction_rejects_fault(self, po_factory):
        with pytest.raises(VdomTypeError):
            po_factory.create_quantity(100)

    def test_mutation_rejects_fault(self, po_binding, full_po):
        with pytest.raises(VdomTypeError):
            full_po.items.add(po_binding.factory.create_comment("no"))

    def test_no_validation_needed_after_construction(self, po_binding, full_po):
        """Serializing a V-DOM tree needs no validation pass at all."""
        document = po_binding.document(full_po)
        text = serialize(document)
        assert validate(parse_document(text), po_binding.schema) == []


class TestPxmlStage:
    """P-XML: the fault is reported before any rendering happens."""

    def test_static_rejection_before_run(self, po_binding):
        with pytest.raises(PxmlStaticError):
            Template(po_binding, "<quantity>100</quantity>")

    def test_static_rejection_of_structure(self, po_binding):
        with pytest.raises(PxmlStaticError):
            Template(
                po_binding,
                "<purchaseOrder><billTo><name>n</name><street>s</street>"
                "<city>c</city><state>st</state><zip>1</zip></billTo>"
                "</purchaseOrder>",
            )


FAULT_MATRIX = {
    # fault name -> (caught statically by P-XML?, caught by V-DOM build?)
    "bad-quantity": (True, True),
    "bad-sku": (True, True),
    "wrong-country": (True, True),
    "missing-child": (True, True),
    "wrong-element-order": (True, True),
}


class TestDetectionMatrix:
    """For faults expressible as templates, compare stages directly."""

    TEMPLATES = {
        "bad-quantity": "<quantity>100</quantity>",
        "bad-sku": (
            '<item partNum="87-AA"><productName>x</productName>'
            "<quantity>1</quantity><USPrice>1.0</USPrice></item>"
        ),
        "wrong-country": (
            '<shipTo country="DE"><name>n</name><street>s</street>'
            "<city>c</city><state>st</state><zip>1</zip></shipTo>"
        ),
        "missing-child": (
            "<shipTo><name>n</name><street>s</street>"
            "<state>st</state><zip>1</zip></shipTo>"
        ),
        "wrong-element-order": (
            "<shipTo><street>s</street><name>n</name>"
            "<city>c</city><state>st</state><zip>1</zip></shipTo>"
        ),
    }

    @pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
    def test_pxml_catches_statically(self, po_binding, fault):
        expected_static, __ = FAULT_MATRIX[fault]
        if expected_static:
            with pytest.raises(PxmlStaticError):
                Template(po_binding, self.TEMPLATES[fault])

    @pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
    def test_vdom_catches_at_unmarshal(self, po_binding, fault):
        __, expected_build = FAULT_MATRIX[fault]
        document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[fault])
        if expected_build:
            with pytest.raises(VdomTypeError):
                po_binding.from_dom(document.document_element)

    @pytest.mark.parametrize(
        "fault", sorted(PURCHASE_ORDER_INVALID_DOCUMENTS)
    )
    def test_runtime_validator_is_the_floor(self, po_binding, fault):
        """Every fault is at least caught by the runtime validator."""
        document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[fault])
        assert validate(document, po_binding.schema)

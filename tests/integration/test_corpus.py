"""Gauntlet corpus: every family binds, every lane agrees byte for byte."""

import json
import os

import pytest

from tests.integration import corpus_runner

FAMILIES = [name for name, _ in corpus_runner.iter_cases()]


def test_corpus_has_at_least_three_families():
    assert len(FAMILIES) >= 3


def test_every_family_is_multi_document_and_namespaced():
    from repro.xsd.schema_parser import parse_schema_file

    for _, case_dir in corpus_runner.iter_cases():
        schema = parse_schema_file(
            os.path.join(case_dir, "schema", "main.xsd")
        )
        assert schema.uses_namespaces
        assert len(schema.related_documents) >= 1


@pytest.mark.parametrize("family", FAMILIES)
def test_family_validates_identically_across_lanes(family, tmp_path):
    case_dir = os.path.join(corpus_runner.CORPUS_DIR, family)
    report = corpus_runner.run_case(
        case_dir, cache_dir=str(tmp_path / "cache"), use_pool=False
    )
    for instance in report["instances"]:
        assert instance["valid"] == instance["expected_valid"], instance
        assert instance["agreed"], instance
        assert instance["lanes_identical"], instance
        # Every corpus root is sniffable, so the lazy lane always ran.
        assert instance["lazy_identical"] is True, instance
    assert report["ok"]


@pytest.mark.parametrize("family", ["secreport"])
def test_family_through_pool_lane(family, tmp_path):
    case_dir = os.path.join(corpus_runner.CORPUS_DIR, family)
    report = corpus_runner.run_case(
        case_dir, cache_dir=str(tmp_path / "cache"), use_pool=True
    )
    assert "pool" in report["lanes"]
    assert report["ok"]


def test_cache_round_trip_binds_warm(tmp_path):
    """A second cache with the same directory reloads the compiled
    binding from disk (format v5) and validates identically."""
    from repro.cache.manager import ReproCache
    from repro.xsd.stream import StreamingValidator

    case_dir = os.path.join(corpus_runner.CORPUS_DIR, "secreport")
    schema_path = os.path.join(case_dir, "schema", "main.xsd")
    with open(schema_path, encoding="utf-8") as handle:
        schema_text = handle.read()
    instance = os.path.join(
        case_dir, "instances", "invalid-bad-severity.xml"
    )
    with open(instance, encoding="utf-8") as handle:
        text = handle.read()

    first = ReproCache(tmp_path / "cache")
    cold = first.bind(schema_text, location=schema_path)
    cold_verdict = json.dumps(
        corpus_runner._verdict(StreamingValidator(cold.schema), text),
        sort_keys=True,
    )
    assert first.stats.misses >= 1

    second = ReproCache(tmp_path / "cache")
    warm = second.bind(schema_text, location=schema_path)
    warm_verdict = json.dumps(
        corpus_runner._verdict(StreamingValidator(warm.schema), text),
        sort_keys=True,
    )
    assert second.stats.hits >= 1
    assert second.stats.misses == 0
    assert warm_verdict == cold_verdict


def test_editing_an_included_document_invalidates_warm_cache(tmp_path):
    """The related-documents manifest catches edits to files reached
    through include/import even when the entry schema text is unchanged."""
    import shutil

    from repro.cache.manager import ReproCache

    src = os.path.join(corpus_runner.CORPUS_DIR, "secreport", "schema")
    work = tmp_path / "schema"
    shutil.copytree(src, work)
    schema_path = str(work / "main.xsd")
    with open(schema_path, encoding="utf-8") as handle:
        schema_text = handle.read()

    cache = ReproCache(tmp_path / "cache")
    cache.bind(schema_text, location=schema_path)

    common = work / "common.xsd"
    edited = common.read_text(encoding="utf-8").replace(
        '<xsd:enumeration value="high"/>',
        '<xsd:enumeration value="critical"/>',
    )
    common.write_text(edited, encoding="utf-8")

    rebound = ReproCache(tmp_path / "cache")
    binding = rebound.bind(schema_text, location=schema_path)
    assert rebound.stats.invalidations >= 1
    severity = binding.schema.attributes[
        "{http://example.org/common}severity"
    ]
    with pytest.raises(Exception):
        severity.resolved_type().validate("high")
    severity.resolved_type().validate("critical")

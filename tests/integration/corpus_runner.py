"""Real-world schema gauntlet: bind every corpus family, validate every
instance through every lane, and insist the verdicts agree byte for byte.

Each family under ``corpus/`` is a directory with::

    <family>/schema/main.xsd     entry schema (may include/import siblings)
    <family>/instances/*.xml     valid-*.xml and invalid-*.xml documents

``run_case`` binds the family once per lane and validates each instance
through:

* ``object``   — :class:`StreamingValidator` over the object DFAs,
* ``table``    — :class:`StreamingValidator` over the flat integer tables,
* ``warm``     — a cache-mediated binding (``ReproCache.bind``) driving a
  streaming validator, the serve tier's shape,
* ``pool``     — a :class:`ValidationPool` worker process (optional),
* ``lazy``     — a per-subset binding materialised from the sniffed
  instance root (skipped when the root cannot be sniffed).

All lanes must produce the same JSON verdict (``error_entry`` list), and
the DOM validator must agree on validity.  The module is import-light so
``scripts/run_gauntlet.py`` can reuse it outside pytest.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")


def iter_cases(corpus_dir: str = CORPUS_DIR) -> Iterator[tuple[str, str]]:
    """Yield ``(family name, family directory)`` in sorted order."""
    for name in sorted(os.listdir(corpus_dir)):
        path = os.path.join(corpus_dir, name)
        if os.path.isdir(os.path.join(path, "schema")):
            yield name, path


def iter_instances(case_dir: str) -> Iterator[tuple[str, str, bool]]:
    """Yield ``(instance name, path, expected validity)`` for one family."""
    instances = os.path.join(case_dir, "instances")
    for name in sorted(os.listdir(instances)):
        if not name.endswith(".xml"):
            continue
        if name.startswith("valid-"):
            expected = True
        elif name.startswith("invalid-"):
            expected = False
        else:
            raise ValueError(
                f"instance {name!r} must start with valid- or invalid-"
            )
        yield name, os.path.join(instances, name), expected


def _verdict(validator, text: str) -> dict[str, Any]:
    """The serve-tier verdict shape for one document through one lane."""
    from repro.errors import XmlSyntaxError
    from repro.xsd.stream import error_entry

    try:
        errors = validator.validate_text(text)
    except XmlSyntaxError as error:
        errors = [error]
    return {
        "valid": not errors,
        "errors": [error_entry(error) for error in errors],
    }


def _dom_valid(schema, text: str) -> bool:
    from repro.dom import parse_document
    from repro.xsd.validator import SchemaValidator

    return not SchemaValidator(schema).validate(parse_document(text))


def run_case(
    case_dir: str,
    *,
    cache_dir: str | None = None,
    use_pool: bool = True,
) -> dict[str, Any]:
    """Bind one family and push every instance through every lane.

    Returns a JSON-serialisable report::

        {"family": ..., "schema": ..., "documents": N,
         "related_documents": N, "lanes": [...],
         "instances": [{"name", "expected_valid", "valid", "agreed",
                        "lanes_identical", "lazy_identical", "errors"}],
         "ok": bool}
    """
    from repro.cache.manager import ReproCache
    from repro.ingest.pool import ValidationPool
    from repro.xsd.schema_parser import parse_schema_file
    from repro.xsd.stream import StreamingValidator
    from repro.xsd.subset import sniff_root_key

    schema_path = os.path.join(case_dir, "schema", "main.xsd")
    with open(schema_path, "r", encoding="utf-8") as handle:
        schema_text = handle.read()

    schema = parse_schema_file(schema_path)
    cache = ReproCache(cache_dir)
    warm_binding = cache.bind(schema_text, location=schema_path)

    lanes: dict[str, Any] = {
        "object": StreamingValidator(schema, use_tables=False),
        "table": StreamingValidator(schema, use_tables=True),
        "warm": StreamingValidator(warm_binding.schema),
    }
    pool = None
    if use_pool:
        pool = ValidationPool(
            schema_text,
            workers=1,
            cache_dir=cache_dir,
            schema_location=schema_path,
        )

    report: dict[str, Any] = {
        "family": os.path.basename(case_dir),
        "schema": schema_path,
        "namespaces": sorted(uri for uri in schema.namespaces if uri),
        "related_documents": len(schema.related_documents),
        "lanes": list(lanes) + (["pool"] if pool else []) + ["lazy"],
        "instances": [],
        "ok": True,
    }
    try:
        for name, path, expected in iter_instances(case_dir):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            verdicts = {
                lane: _verdict(validator, text)
                for lane, validator in lanes.items()
            }
            if pool is not None:
                verdicts["pool"] = pool.submit_text(text).result(timeout=60)

            root_key = sniff_root_key(text)
            lazy_identical = None
            if root_key is not None and root_key in schema.elements:
                lazy_binding = cache.bind(
                    schema_text,
                    location=schema_path,
                    lazy_roots=(root_key,),
                )
                verdicts["lazy"] = _verdict(
                    StreamingValidator(lazy_binding.schema), text
                )
                lazy_identical = verdicts["lazy"] == verdicts["object"]

            serialized = {
                lane: json.dumps(verdict, sort_keys=True)
                for lane, verdict in verdicts.items()
            }
            lanes_identical = len(set(serialized.values())) == 1
            valid = verdicts["object"]["valid"]
            dom_agrees = _dom_valid(schema, text) == valid

            entry = {
                "name": name,
                "expected_valid": expected,
                "valid": valid,
                "agreed": valid == expected and dom_agrees,
                "lanes_identical": lanes_identical,
                "lazy_identical": lazy_identical,
                "errors": verdicts["object"]["errors"],
            }
            report["instances"].append(entry)
            if not (
                entry["agreed"]
                and lanes_identical
                and lazy_identical in (True, None)
            ):
                report["ok"] = False
    finally:
        if pool is not None:
            pool.close()
    return report


def run_all(
    *, cache_dir: str | None = None, use_pool: bool = True
) -> list[dict[str, Any]]:
    return [
        run_case(case_dir, cache_dir=cache_dir, use_pool=use_pool)
        for _, case_dir in iter_cases()
    ]

"""DTD → schema conversion: the prior-work ([14]) V-DOM pipeline."""

import pytest

from repro.dom import parse_document, serialize
from repro.dtd import bind_dtd, dtd_to_schema, parse_dtd
from repro.errors import GenerationError, VdomTypeError
from repro.xsd import SchemaValidator
from repro.xsd.components import ComplexType, Compositor, ContentType
from repro.automata.rex import UNBOUNDED
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_DTD,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
)


@pytest.fixture(scope="module")
def po_dtd_schema():
    return dtd_to_schema(parse_dtd(PURCHASE_ORDER_DTD))


@pytest.fixture(scope="module")
def po_dtd_binding():
    return bind_dtd(PURCHASE_ORDER_DTD)


class TestConversion:
    def test_every_element_becomes_global(self, po_dtd_schema):
        assert set(po_dtd_schema.elements) == {
            "purchaseOrder", "shipTo", "billTo", "comment", "items",
            "item", "productName", "quantity", "USPrice", "shipDate",
            "name", "street", "city", "state", "zip",
        }

    def test_named_types_allocated(self, po_dtd_schema):
        assert "PurchaseOrderType" in po_dtd_schema.types
        assert "ItemType" in po_dtd_schema.types

    def test_sequence_content_with_occurrences(self, po_dtd_schema):
        po_type = po_dtd_schema.types["PurchaseOrderType"]
        assert isinstance(po_type, ComplexType)
        group = po_type.content.term
        assert group.compositor is Compositor.SEQUENCE
        names = [p.term.name for p in group.particles]
        assert names == ["shipTo", "billTo", "comment", "items"]
        assert group.particles[2].min_occurs == 0  # comment?

    def test_star_maps_to_unbounded(self, po_dtd_schema):
        items_type = po_dtd_schema.types["ItemsType"]
        particle = items_type.content.term.particles[0]
        assert particle.min_occurs == 0
        assert particle.max_occurs == UNBOUNDED

    def test_pcdata_becomes_string_content(self, po_dtd_schema):
        comment_type = po_dtd_schema.types["CommentType"]
        assert comment_type.content_type is ContentType.SIMPLE
        assert comment_type.simple_content.name == "string"

    def test_fixed_attribute_preserved(self, po_dtd_schema):
        ship_to = po_dtd_schema.types["ShipToType"]
        assert ship_to.attribute_uses["country"].fixed == "US"

    def test_required_attribute_preserved(self, po_dtd_schema):
        item = po_dtd_schema.types["ItemType"]
        assert item.attribute_uses["partNum"].required

    def test_enumeration_attribute(self):
        schema = dtd_to_schema(
            parse_dtd(
                '<!ELEMENT a EMPTY><!ATTLIST a kind (web|phone) "web">'
            )
        )
        use = schema.types["AType"].attribute_uses["kind"]
        assert use.default == "web"
        assert use.declaration.resolved_type().is_valid("phone")
        assert not use.declaration.resolved_type().is_valid("fax")

    def test_mixed_content(self):
        schema = dtd_to_schema(
            parse_dtd("<!ELEMENT p (#PCDATA | b)*><!ELEMENT b (#PCDATA)>")
        )
        p_type = schema.types["PType"]
        assert p_type.content_type is ContentType.MIXED

    def test_any_content(self):
        schema = dtd_to_schema(
            parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>")
        )
        a_type = schema.types["AType"]
        assert a_type.mixed
        dfa = schema.content_dfa(a_type)
        assert dfa.accepts(["b", "a", "b"])

    def test_undeclared_reference_rejected(self):
        with pytest.raises(GenerationError, match="undeclared"):
            dtd_to_schema(parse_dtd("<!ELEMENT a (ghost)>"))

    def test_converted_schema_validates_fig1(self, po_dtd_schema):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        assert SchemaValidator(po_dtd_schema).validate(document) == []


class TestDtdBinding:
    def test_binding_round_trips_fig1(self, po_dtd_binding):
        """Unmarshal → serialize → unmarshal is a fixpoint (modulo the
        layout whitespace from_dom drops)."""
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        typed = po_dtd_binding.from_dom(document.document_element)
        once = serialize(typed)
        again = po_dtd_binding.from_dom(
            parse_document(once).document_element
        )
        assert serialize(again) == once
        assert typed.items is not None
        assert [
            item.product_name.content for item in typed.items.item_list
        ] == ["Lawnmower", "Baby Monitor"]

    def test_structure_enforced(self, po_dtd_binding):
        factory = po_dtd_binding.factory
        with pytest.raises(VdomTypeError):
            factory.create_purchase_order(factory.create_comment("only"))

    def test_expressiveness_gap(self, po_dtd_binding):
        """What the DTD pipeline cannot enforce (the paper's motivation
        for XML Schema): typed values, facets, patterns."""
        factory = po_dtd_binding.factory
        # All of these are rejected by the schema-based binding but
        # sail through the DTD-based one:
        quantity = factory.create_quantity("not-a-number")
        assert quantity.content == "not-a-number"
        item = factory.create_item(
            factory.create_product_name("x"),
            factory.create_quantity("1"),
            factory.create_us_price("expensive"),
            part_num="ANY OLD STRING",
        )
        assert item.get_attribute("partNum") == "ANY OLD STRING"

    def test_gap_measured_on_fault_corpus(self, po_dtd_binding):
        """The DTD binding catches structural faults, misses value faults."""
        missed = []
        for fault, text in PURCHASE_ORDER_INVALID_DOCUMENTS.items():
            try:
                po_dtd_binding.from_dom(
                    parse_document(text).document_element
                )
                missed.append(fault)
            except VdomTypeError:
                pass
        assert sorted(missed) == [
            "bad-date", "bad-price", "bad-quantity", "bad-sku",
        ]

    def test_dtd_templates_work(self, po_dtd_binding):
        """P-XML runs unchanged on the DTD-derived binding."""
        from repro.pxml import Template

        template = Template(po_dtd_binding, "<comment>$c$</comment>")
        assert template.render(c="hi").content == "hi"

"""DTD validation of DOM documents (the prior-work baseline)."""

import pytest

from repro.dom import parse_document
from repro.dtd import DtdValidator, parse_dtd, validate_against_dtd
from repro.schemas import PURCHASE_ORDER_DOCUMENT, PURCHASE_ORDER_DTD


@pytest.fixture(scope="module")
def po_dtd():
    return parse_dtd(PURCHASE_ORDER_DTD, root_name="purchaseOrder")


@pytest.fixture(scope="module")
def po_validator(po_dtd):
    return DtdValidator(po_dtd)


class TestPurchaseOrderDtd:
    def test_fig1_document_is_dtd_valid(self, po_validator):
        document = parse_document(PURCHASE_ORDER_DOCUMENT)
        assert po_validator.validate(document) == []

    def test_wrong_order_detected(self, po_validator):
        document = parse_document(
            PURCHASE_ORDER_DOCUMENT.replace(
                "<comment>Hurry, my lawn is going wild</comment>\n  <items>",
                "<items>",
            ).replace(
                "</items>\n</purchaseOrder>",
                "</items>\n<comment>late</comment>\n</purchaseOrder>",
            )
        )
        errors = po_validator.validate(document)
        assert errors

    def test_dtd_cannot_catch_value_errors(self, po_validator):
        """DTDs have no types: a bad quantity passes (the schema gap)."""
        document = parse_document(
            PURCHASE_ORDER_DOCUMENT.replace(
                "<quantity>1</quantity>", "<quantity>not-a-number</quantity>", 1
            )
        )
        assert po_validator.validate(document) == []

    def test_dtd_cannot_catch_pattern_errors(self, po_validator):
        document = parse_document(PURCHASE_ORDER_DOCUMENT.replace("872-AA", "bogus"))
        assert po_validator.validate(document) == []


class TestContentModels:
    def test_missing_required_child(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        errors = validate_against_dtd(parse_document("<a><b/></a>"), dtd)
        assert any("ends too early" in str(e) for e in errors)

    def test_empty_element_with_content(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        errors = validate_against_dtd(parse_document("<a>text</a>"), dtd)
        assert any("EMPTY" in str(e) for e in errors)

    def test_text_in_element_content(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        errors = validate_against_dtd(parse_document("<a>oops<b/></a>"), dtd)
        assert any("contains text" in str(e) for e in errors)

    def test_undeclared_element(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        errors = validate_against_dtd(parse_document("<b/>"), dtd)
        assert any("not declared" in str(e) for e in errors)

    def test_root_name_checked(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b EMPTY>", root_name="a")
        errors = validate_against_dtd(parse_document("<b/>"), dtd)
        assert any("DOCTYPE declares" in str(e) for e in errors)

    def test_any_content_allows_declared_children(self):
        dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>")
        assert validate_against_dtd(parse_document("<a><b/><b/>txt</a>"), dtd) == []

    def test_mixed_content(self):
        dtd = parse_dtd(
            "<!ELEMENT p (#PCDATA | b)*><!ELEMENT b (#PCDATA)>"
        )
        assert validate_against_dtd(
            parse_document("<p>some <b>bold</b> text</p>"), dtd
        ) == []


class TestAttributes:
    def test_required_attribute_enforced(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ATTLIST a x CDATA #REQUIRED>")
        errors = validate_against_dtd(parse_document("<a/>"), dtd)
        assert any("required attribute" in str(e) for e in errors)

    def test_undeclared_attribute_rejected(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        errors = validate_against_dtd(parse_document('<a x="1"/>'), dtd)
        assert any("not declared" in str(e) for e in errors)

    def test_fixed_value_enforced(self):
        dtd = parse_dtd(
            '<!ELEMENT a EMPTY><!ATTLIST a c NMTOKEN #FIXED "US">'
        )
        errors = validate_against_dtd(parse_document('<a c="DE"/>'), dtd)
        assert any("fixed" in str(e) for e in errors)

    def test_enumeration_enforced(self):
        dtd = parse_dtd(
            '<!ELEMENT a EMPTY><!ATTLIST a k (x|y) #IMPLIED>'
        )
        errors = validate_against_dtd(parse_document('<a k="z"/>'), dtd)
        assert any("must be one of" in str(e) for e in errors)

    def test_nmtokens_checked(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a k NMTOKENS #IMPLIED>"
        )
        assert validate_against_dtd(parse_document('<a k="x y"/>'), dtd) == []
        errors = validate_against_dtd(parse_document('<a k=" "/>'), dtd)
        assert errors


class TestIdConstraints:
    DTD = (
        "<!ELEMENT root (item*)>"
        "<!ELEMENT item EMPTY>"
        "<!ATTLIST item id ID #REQUIRED ref IDREF #IMPLIED>"
    )

    def test_unique_ids_pass(self):
        dtd = parse_dtd(self.DTD)
        document = parse_document(
            '<root><item id="a"/><item id="b" ref="a"/></root>'
        )
        assert validate_against_dtd(document, dtd) == []

    def test_duplicate_id_detected(self):
        dtd = parse_dtd(self.DTD)
        document = parse_document('<root><item id="a"/><item id="a"/></root>')
        errors = validate_against_dtd(document, dtd)
        assert any("duplicate ID" in str(e) for e in errors)

    def test_dangling_idref_detected(self):
        dtd = parse_dtd(self.DTD)
        document = parse_document('<root><item id="a" ref="ghost"/></root>')
        errors = validate_against_dtd(document, dtd)
        assert any("does not match any ID" in str(e) for e in errors)

"""DTD declaration parsing."""

import pytest

from repro.errors import DtdError
from repro.dtd import (
    AttDefault,
    AttType,
    ContentKind,
    parse_dtd,
)


class TestElementDeclarations:
    def test_empty_content(self):
        dtd = parse_dtd("<!ELEMENT br EMPTY>")
        assert dtd.elements["br"].content.kind is ContentKind.EMPTY

    def test_any_content(self):
        dtd = parse_dtd("<!ELEMENT any ANY>")
        assert dtd.elements["any"].content.kind is ContentKind.ANY

    def test_pcdata_only(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        content = dtd.elements["t"].content
        assert content.kind is ContentKind.MIXED
        assert content.mixed_names == frozenset()

    def test_mixed_with_names(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | b | i)*>")
        content = dtd.elements["p"].content
        assert content.mixed_names == frozenset({"b", "i"})

    def test_sequence_model(self):
        dtd = parse_dtd("<!ELEMENT po (shipTo, billTo?, item+)>")
        assert str(dtd.elements["po"].content) == "(shipTo, billTo?, item+)"

    def test_choice_model(self):
        dtd = parse_dtd("<!ELEMENT x (a | b | c)*>")
        assert str(dtd.elements["x"].content) == "(a | b | c)*"

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT x ((a, b) | c)+>")
        assert str(dtd.elements["x"].content) == "((a, b) | c)+"

    def test_duplicate_element_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>")

    def test_mixed_connectors_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT x (a, b | c)>")


class TestAttlistDeclarations:
    def test_cdata_required(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a x CDATA #REQUIRED>"
        )
        definition = dtd.attributes["a"]["x"]
        assert definition.att_type is AttType.CDATA
        assert definition.default_kind is AttDefault.REQUIRED

    def test_enumeration_with_default(self):
        dtd = parse_dtd('<!ATTLIST a kind (web|phone) "web">')
        definition = dtd.attributes["a"]["kind"]
        assert definition.att_type is AttType.ENUMERATION
        assert definition.enumeration == ("web", "phone")
        assert definition.default_value == "web"

    def test_default_outside_enumeration_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd('<!ATTLIST a kind (web|phone) "fax">')

    def test_fixed_value(self):
        dtd = parse_dtd('<!ATTLIST a country NMTOKEN #FIXED "US">')
        definition = dtd.attributes["a"]["country"]
        assert definition.default_kind is AttDefault.FIXED
        assert definition.default_value == "US"

    def test_id_types(self):
        dtd = parse_dtd(
            "<!ATTLIST a i ID #REQUIRED r IDREF #IMPLIED rs IDREFS #IMPLIED>"
        )
        assert dtd.attributes["a"]["i"].att_type is AttType.ID
        assert dtd.attributes["a"]["r"].att_type is AttType.IDREF
        assert dtd.attributes["a"]["rs"].att_type is AttType.IDREFS

    def test_first_declaration_binds(self):
        dtd = parse_dtd(
            '<!ATTLIST a x CDATA "first"><!ATTLIST a x CDATA "second">'
        )
        assert dtd.attributes["a"]["x"].default_value == "first"


class TestEntities:
    def test_general_entity(self):
        dtd = parse_dtd('<!ENTITY co "Example Co">')
        assert dtd.entities["co"] == "Example Co"

    def test_parameter_entity_expansion(self):
        dtd = parse_dtd(
            '<!ENTITY % fields "name, street">'
            "<!ELEMENT addr (%fields;)>"
        )
        assert str(dtd.elements["addr"].content) == "(name, street)"

    def test_undeclared_parameter_entity_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT a (%nope;)>")

    def test_external_entity_skipped(self):
        dtd = parse_dtd('<!ENTITY ext SYSTEM "http://x/file.txt">')
        assert "ext" not in dtd.entities

    def test_comments_and_pis_ignored(self):
        dtd = parse_dtd("<!-- c --><?pi d?><!ELEMENT a EMPTY>")
        assert "a" in dtd.elements

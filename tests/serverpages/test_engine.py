"""The JSP-like baseline engine — including its signature flaw."""

import pytest

from repro.errors import ServerPageError
from repro.dom import parse_document
from repro.errors import XmlSyntaxError
from repro.serverpages import ServerPage, render_page
from repro.xsd import SchemaValidator, parse_schema
from repro.schemas import WML_SCHEMA


class TestRendering:
    def test_static_page(self):
        assert render_page("<p>hello</p>") == "<p>hello</p>"

    def test_expression(self):
        assert render_page("<p><%= 1 + 2 %></p>") == "<p>3</p>"

    def test_context_variables(self):
        assert render_page("<%= who %>!", who="world") == "world!"

    def test_for_loop(self):
        page = "<ul><% for x in xs: %><li><%= x %></li><% end %></ul>"
        assert render_page(page, xs=[1, 2]) == "<ul><li>1</li><li>2</li></ul>"

    def test_if_else(self):
        page = "<% if flag: %>yes<% else: %>no<% end %>"
        assert render_page(page, flag=True) == "yes"
        assert render_page(page, flag=False) == "no"

    def test_nested_blocks(self):
        page = (
            "<% for x in xs: %><% if x > 1: %><%= x %><% end %><% end %>"
        )
        assert render_page(page, xs=[1, 2, 3]) == "23"

    def test_statements(self):
        page = "<% total = a + b %><%= total %>"
        assert render_page(page, a=2, b=3) == "5"

    def test_comments_dropped(self):
        assert render_page("a<%-- hidden --%>b") == "ab"

    def test_page_reuse(self):
        page = ServerPage("<%= n %>")
        assert page.render(n=1) == "1"
        assert page.render(n=2) == "2"


class TestBlockConstructs:
    def test_while_loop(self):
        page = (
            "<% n = 3 %><% while n > 0: %><%= n %><% n = n - 1 %><% end %>"
        )
        assert render_page(page) == "321"

    def test_elif_chain(self):
        page = (
            "<% if x == 1: %>one<% elif x == 2: %>two"
            "<% else: %>many<% end %>"
        )
        assert render_page(page, x=1) == "one"
        assert render_page(page, x=2) == "two"
        assert render_page(page, x=9) == "many"

    def test_try_except(self):
        page = (
            "<% try: %><%= 1 // d %><% except ZeroDivisionError: %>"
            "divide by zero<% end %>"
        )
        assert render_page(page, d=0) == "divide by zero"
        assert render_page(page, d=1) == "1"

    def test_nested_loops(self):
        page = (
            "<% for r in rows: %><tr><% for c in r: %>"
            "<td><%= c %></td><% end %></tr><% end %>"
        )
        assert render_page(page, rows=[[1, 2], [3]]) == (
            "<tr><td>1</td><td>2</td></tr><tr><td>3</td></tr>"
        )

    def test_runtime_name_error_surfaces_at_render(self):
        page = ServerPage("<%= undefined_name %>")
        with pytest.raises(NameError):
            page.render()


class TestTranslationErrors:
    def test_unterminated_scriptlet(self):
        with pytest.raises(ServerPageError, match="unterminated"):
            ServerPage("<% for x in xs: ")

    def test_unbalanced_end(self):
        with pytest.raises(ServerPageError, match="unbalanced"):
            ServerPage("<% end %>")

    def test_unclosed_block(self):
        with pytest.raises(ServerPageError, match="unclosed"):
            ServerPage("<% for x in xs: %>body")

    def test_python_syntax_error_surfaces(self):
        with pytest.raises(ServerPageError, match="does not compile"):
            ServerPage("<% def broken( %>")


class TestTheBaselineFlaw:
    """The paper's point: the engine accepts pages that emit invalid
    markup, and nothing notices until post-hoc validation."""

    WML_PAGE_OK = (
        "<wml><card><p><select name=\"dirs\">"
        "<% for d in dirs: %>"
        "<option value=\"<%= d %>\"><%= d %></option>"
        "<% end %>"
        "</select></p></card></wml>"
    )
    #: The Fig. 8→"wrong server page" mutation: a stray unclosed tag.
    WML_PAGE_BROKEN = WML_PAGE_OK.replace("</select>", "<TITLE></select>")

    def test_valid_page_renders_valid_wml(self):
        output = render_page(self.WML_PAGE_OK, dirs=["a", "b"])
        schema = parse_schema(WML_SCHEMA)
        document = parse_document(output)
        assert SchemaValidator(schema).validate(document) == []

    def test_broken_page_is_accepted_by_the_engine(self):
        """The engine compiles and renders the broken page happily."""
        output = render_page(self.WML_PAGE_BROKEN, dirs=["a"])
        assert "<TITLE>" in output

    def test_breakage_only_surfaces_at_validation_time(self):
        output = render_page(self.WML_PAGE_BROKEN, dirs=["a"])
        with pytest.raises(XmlSyntaxError):
            parse_document(output)  # not even well-formed

    def test_invalid_but_wellformed_output_needs_schema_validation(self):
        page = self.WML_PAGE_OK.replace(
            '<select name="dirs">', '<select name="not a token">'
        )
        output = render_page(page, dirs=["a"])
        document = parse_document(output)  # well-formed...
        schema = parse_schema(WML_SCHEMA)
        errors = SchemaValidator(schema).validate(document)
        assert errors  # ...but invalid, found only here

"""Shape of the code the template compiler emits (Fig. 11 fidelity)."""


from repro.pxml import check_template
from repro.pxml.compiler import compile_template, compile_template_source


def source_for(binding, template, **kwargs):
    checked = check_template(binding, template)
    return compile_template_source(checked, **kwargs)


class TestFunctionShape:
    def test_holes_become_keyword_only_parameters(self, po_binding):
        source = source_for(
            po_binding,
            "<item partNum='$sku$'><productName>$p:text$</productName>"
            "<quantity>1</quantity><USPrice>1.0</USPrice></item>",
        )
        assert source.startswith("def render(factory, *, p, sku):")

    def test_no_holes_no_star(self, po_binding):
        source = source_for(po_binding, "<comment>fixed</comment>")
        assert source.startswith("def render(factory):")

    def test_custom_function_name(self, po_binding):
        source = source_for(
            po_binding, "<comment>x</comment>", function_name="__pxml_7"
        )
        assert "def __pxml_7(factory):" in source

    def test_compiles_and_runs(self, po_binding):
        checked = check_template(po_binding, "<comment>$c$</comment>")
        source, render = compile_template(checked)
        element = render(po_binding.factory, c="hello")
        assert element.content == "hello"


class TestEmittedCalls:
    def test_nested_factory_calls(self, po_binding):
        source = source_for(
            po_binding,
            "<shipTo><name>n</name><street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        assert "factory.create_ship_to(" in source
        assert "factory.create_name(" in source
        assert source.count("factory.create_") == 6

    def test_text_holes_lexicalized(self, po_binding):
        source = source_for(po_binding, "<quantity>$q$</quantity>")
        assert "_lex(q)" in source

    def test_element_holes_passed_directly(self, po_binding):
        source = source_for(
            po_binding,
            "<shipTo>$n:name$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        assert "\n        n,\n" in source

    def test_element_hole_guard_emitted(self, po_binding):
        source = source_for(
            po_binding,
            "<shipTo>$n:name$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        assert "_hole_specs['n'].accepts(n)" in source

    def test_spec_prefix_namespacing(self, po_binding):
        source = source_for(
            po_binding,
            "<shipTo>$n:name$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
            function_name="__pxml_3",
            spec_prefix="__pxml_3.",
        )
        assert "_hole_specs['__pxml_3.n'].accepts(n)" in source

    def test_attributes_via_dict_unpack(self, wml_binding):
        source = source_for(
            wml_binding, '<option value="/x">label</option>'
        )
        assert "**{'value': '/x'}" in source

    def test_attribute_concatenation(self, wml_binding):
        source = source_for(
            wml_binding, '<option value="/base/$d$/x">label</option>'
        )
        assert "'/base/' + _lex(d) + '/x'" in source

    def test_layout_whitespace_dropped(self, po_binding):
        source = source_for(
            po_binding,
            "<shipTo>\n  <name>n</name>\n  <street>s</street>\n"
            "  <city>c</city>\n  <state>st</state>\n  <zip>1</zip>\n</shipTo>",
        )
        # pure-indentation text between child elements does not become
        # constructor arguments
        assert "'\\n  '" not in source

    def test_mixed_content_text_kept(self, wml_binding):
        source = source_for(wml_binding, "<p>keep <b>this</b> text</p>")
        assert "'keep '" in source
        assert "' text'" in source

    def test_empty_element_no_arguments(self, wml_binding):
        source = source_for(wml_binding, "<p><br/></p>")
        assert "factory.create_br()" in source

"""P-XML constructor parsing."""

import pytest

from repro.errors import PxmlSyntaxError
from repro.pxml.ast import Hole, TemplateElement, TemplateText
from repro.pxml.parser import parse_template


class TestElements:
    def test_simple_element(self):
        root = parse_template("<a>text</a>")
        assert root.name == "a"
        assert isinstance(root.children[0], TemplateText)
        assert root.children[0].data == "text"

    def test_nested_structure(self):
        root = parse_template("<a><b/><c>x</c></a>")
        names = [c.name for c in root.children if isinstance(c, TemplateElement)]
        assert names == ["b", "c"]

    def test_attributes(self):
        root = parse_template('<a x="1" y="2"/>')
        assert [a.name for a in root.attributes] == ["x", "y"]
        assert root.attributes[0].static_value() == "1"

    def test_entities_resolved(self):
        root = parse_template("<a>1 &lt; 2</a>")
        assert root.children[0].data == "1 < 2"

    def test_cdata(self):
        root = parse_template("<a><![CDATA[<raw>]]></a>")
        assert root.children[0].data == "<raw>"
        assert root.children[0].cdata

    def test_comments_dropped(self):
        root = parse_template("<a><!-- note --><b/></a>")
        assert len(root.children) == 1

    def test_leading_whitespace_ok(self):
        root = parse_template("\n  <a/>  \n")
        assert root.name == "a"


class TestHoles:
    def test_content_hole(self):
        root = parse_template("<a>$x$</a>")
        hole = root.children[0]
        assert isinstance(hole, Hole)
        assert hole.name == "x"
        assert hole.annotation is None

    def test_annotated_hole(self):
        root = parse_template("<a>$x:name$</a>")
        assert root.children[0].annotation == "name"

    def test_text_annotation(self):
        root = parse_template("<a>$x:text$</a>")
        assert root.children[0].annotation == "text"

    def test_hole_between_text(self):
        root = parse_template("<a>pre $x$ post</a>")
        kinds = [type(c).__name__ for c in root.children]
        assert kinds == ["TemplateText", "Hole", "TemplateText"]

    def test_attribute_hole(self):
        root = parse_template('<a href="$u$"/>')
        parts = root.attributes[0].parts
        assert isinstance(parts[0], Hole)

    def test_attribute_mixed_parts(self):
        root = parse_template('<a href="/base/$u$?x=1"/>')
        parts = root.attributes[0].parts
        assert parts[0] == "/base/"
        assert isinstance(parts[1], Hole)
        assert parts[2] == "?x=1"

    def test_dollar_escape(self):
        root = parse_template("<a>costs $$5</a>")
        assert root.children[0].data == "costs $5"

    def test_dollar_escape_in_attribute(self):
        root = parse_template('<a x="$$5"/>')
        assert root.attributes[0].static_value() == "$5"

    def test_holes_helper_collects_all(self):
        root = parse_template('<a x="$h1$"><b>$h2$</b>$h3:text$</a>')
        assert [h.name for h in root.holes()] == ["h1", "h2", "h3"]


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "no markup",
            "<a>",
            "<a></b>",
            "<a/><b/>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>$not an identifier$</a>",
            "<a>$x:$</a>",
            "<a>$unterminated</a>",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(PxmlSyntaxError):
            parse_template(source)

    def test_error_location(self):
        try:
            parse_template("<a>\n  <b></c>\n</a>")
        except PxmlSyntaxError as error:
            assert error.location.line == 2
        else:
            pytest.fail("expected an error")

"""Interpreted rendering details (the compiler's reference semantics)."""

import pytest

from repro.dom import serialize
from repro.errors import PxmlStaticError
from repro.pxml import check_template
from repro.pxml.runtime import render_interpreted


def checked(binding, source, **kwargs):
    return check_template(binding, source, **kwargs)


class TestInterpretedRendering:
    def test_constant_template(self, po_binding):
        template = checked(po_binding, "<comment>fixed</comment>")
        assert render_interpreted(template).content == "fixed"

    def test_text_and_element_holes(self, po_binding, po_factory):
        template = checked(
            po_binding,
            "<shipTo>$n$<street>$s:text$</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        result = render_interpreted(
            template, n=po_factory.create_name("N"), s="S"
        )
        assert result.name.content == "N"
        assert result.street.content == "S"

    def test_attribute_hole_composition(self, wml_binding):
        template = checked(
            wml_binding, '<option value="pre-$x$-post">t</option>'
        )
        option = render_interpreted(template, x="MID")
        assert option.get_attribute("value") == "pre-MID-post"

    def test_python_values_lexicalized(self, po_binding):
        template = checked(po_binding, "<quantity>$q$</quantity>")
        assert render_interpreted(template, q=42).value == 42

    def test_cdata_text_preserved(self, po_binding):
        template = checked(
            po_binding, "<comment><![CDATA[a < b]]></comment>"
        )
        assert render_interpreted(template).content == "a < b"

    def test_whitespace_layout_dropped(self, po_binding):
        template = checked(
            po_binding,
            "<shipTo>\n  <name>n</name>\n  <street>s</street>\n"
            "  <city>c</city>\n  <state>st</state>\n  <zip>1</zip>\n"
            "</shipTo>",
        )
        result = render_interpreted(template)
        assert serialize(result).startswith("<shipTo country=")
        assert "\n" not in serialize(result)

    def test_mixed_text_kept(self, wml_binding):
        template = checked(wml_binding, "<p>pre <b>x</b> post</p>")
        assert serialize(render_interpreted(template)) == (
            "<p>pre <b>x</b> post</p>"
        )

    def test_element_hole_type_enforced(self, po_binding, po_factory):
        template = checked(
            po_binding,
            "<shipTo>$n$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        with pytest.raises(PxmlStaticError, match="expects an instance"):
            render_interpreted(template, n=po_factory.create_city("no"))

    def test_group_hole_accepts_all_members(self, wml_binding):
        factory = wml_binding.factory
        template = checked(wml_binding, "<p>$x:PTypeCC1Group$</p>")
        select = factory.create_select(
            factory.create_option("o"), name="d"
        )
        bold = factory.create_b("stark")
        for value in (select, bold):
            result = render_interpreted(template, x=value)
            assert result.child_elements()[0] is value

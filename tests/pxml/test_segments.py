"""Segment compilation and the ``render_text`` fast path.

The invariant under test everywhere: for every template and every hole
assignment, ``template.render_text(**values)`` is byte-identical to
``serialize(template.render(**values))`` — including which exception is
raised, with which message, when a value is invalid.
"""

import importlib.util
import pathlib
import random

import pytest

from repro.core import bind
from repro.dom import serialize
from repro.errors import PxmlStaticError, VdomTypeError
from repro.pxml import Template, compile_segments, render_text_interpreted
from repro.pxml.segments import program_from_record, program_to_record
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.xhtml import XHTML_SUBSET_SCHEMA
from repro.xsd import parse_schema

FIXED_ELEMENT_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="doc">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="version" type="xsd:string" fixed="1.0"/>
        <xsd:element name="body" type="xsd:string"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>
"""


@pytest.fixture(scope="module")
def xhtml_binding():
    return bind(XHTML_SUBSET_SCHEMA)


class TestSegmentCompilation:
    def test_fully_static_template_collapses_to_one_segment(self, po_binding):
        template = Template(po_binding, "<city>Mill Valley</city>")
        program = template._segments
        assert program is not None
        assert program.segments == ["<city>Mill Valley</city>"]
        assert program.static_ratio() == 1.0
        # The generated function short-circuits to a constant return.
        assert "return '<city>Mill Valley</city>'" in template.text_source

    def test_text_hole_template_mostly_static(self, po_binding):
        template = Template(
            po_binding,
            "<item partNum=\"872-AA\"><productName>$p$</productName>"
            "<quantity>1</quantity><USPrice>9.99</USPrice></item>",
        )
        program = template._segments
        assert program is not None
        assert 0.0 < program.static_ratio() < 1.0
        assert program.hole_names == ["p"]
        assert program.element_hole_names == []

    def test_hole_names_sorted(self, po_binding):
        template = Template(
            po_binding,
            "<shipTo country=\"US\"><name>$z$</name><street>$a$</street>"
            "<city>X</city><state>CA</state><zip>90952</zip></shipTo>",
        )
        assert template._segments.hole_names == ["a", "z"]

    def test_element_hole_recognized(self, po_binding):
        template = Template(po_binding, "<items>$one:item$</items>")
        assert template._segments.element_hole_names == ["one"]

    def test_fixed_element_falls_back_to_dom(self):
        binding = bind(parse_schema(FIXED_ELEMENT_SCHEMA))
        template = Template(
            binding, "<doc><version>1.0</version><body>$b$</body></doc>"
        )
        # Element-level fixed values are outside the partitioner's proof.
        assert compile_segments(template.checked) is None
        assert template.text_source is None
        # ...but render_text still works, through the DOM fallback.
        assert template.render_text(b="hi") == serialize(
            template.render(b="hi")
        )


class TestRenderTextEquivalence:
    def test_text_hole(self, po_binding):
        template = Template(po_binding, "<comment>$c$</comment>")
        for value in ("plain", "a < b & c", 'quote " here', "line\nbreak"):
            assert template.render_text(c=value) == serialize(
                template.render(c=value)
            )

    def test_attribute_hole_concatenation(self, wml_binding):
        template = Template(
            wml_binding, '<option value="/base/$d$">x</option>'
        )
        for value in ("audio", 'x"y', "a&b", "p<q"):
            assert template.render_text(d=value) == serialize(
                template.render(d=value)
            )

    def test_simple_content_lexicalization(self, po_binding):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        assert template.render_text(q=7) == serialize(template.render(q=7))

    def test_element_hole(self, po_binding):
        item = Template(
            po_binding,
            '<item partNum="872-AA"><productName>Mower</productName>'
            "<quantity>1</quantity><USPrice>9.99</USPrice></item>",
        )
        items = Template(po_binding, "<items>$one:item$</items>")
        # Fresh subtrees per route: adopting a rendered element steals it
        # from its previous tree, so sharing one across renders is illegal
        # for an ``item+`` parent.
        assert items.render_text(one=item.render()) == serialize(
            items.render(one=item.render())
        )

    def test_mixed_content_with_element_hole(self, xhtml_binding):
        link = Template(
            xhtml_binding, '<a href="/log">log</a>'
        )
        template = Template(
            xhtml_binding, "<p>see <b>$w:text$</b> and $l:a$ now</p>"
        )
        fast = template.render_text(w="here", l=link.render())
        slow = serialize(template.render(w="here", l=link.render()))
        assert fast == slow

    def test_interpreted_twin_matches(self, po_binding):
        template = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        assert template._render_text is None
        value = "via the interpreter < & >"
        assert template.render_text(c=value) == serialize(
            template.render(c=value)
        )

    def test_interpreted_function_directly(self, po_binding):
        template = Template(po_binding, "<comment>$c$</comment>")
        assert render_text_interpreted(
            template.checked, c="x & y"
        ) == template.render_text(c="x & y")


class TestErrorParity:
    """The fast path must fail exactly like the typed constructors."""

    def _both_errors(self, template, exception, **values):
        with pytest.raises(exception) as dom_error:
            serialize(template.render(**values))
        with pytest.raises(exception) as text_error:
            template.render_text(**values)
        assert str(text_error.value) == str(dom_error.value)

    def test_facet_violation_message_identical(self, po_binding):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        self._both_errors(template, VdomTypeError, q=100)

    def test_attribute_pattern_violation(self, po_binding):
        template = Template(
            po_binding,
            '<item partNum="$pn$"><productName>x</productName>'
            "<quantity>1</quantity><USPrice>1.00</USPrice></item>",
        )
        self._both_errors(template, VdomTypeError, pn="bogus")

    def test_missing_hole_rejected(self, po_binding):
        # Compiled: keyword-only parameters reject it, same as render().
        template = Template(po_binding, "<comment>$c$</comment>")
        with pytest.raises(TypeError, match="required keyword-only"):
            template.render_text()
        # Interpreted: an explicit static-check error.
        interpreted = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        with pytest.raises(PxmlStaticError, match="missing values"):
            interpreted.render_text()

    def test_unknown_hole_rejected(self, po_binding):
        template = Template(po_binding, "<comment>$c$</comment>")
        with pytest.raises(TypeError, match="unexpected keyword"):
            template.render_text(c="x", extra="y")
        interpreted = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        with pytest.raises(PxmlStaticError, match="unknown holes"):
            interpreted.render_text(c="x", extra="y")

    def test_wrong_element_class_rejected(self, po_binding, po_factory):
        template = Template(po_binding, "<items>$one:item$</items>")
        with pytest.raises(PxmlStaticError, match="expects an instance"):
            template.render_text(one=po_factory.create_comment("nope"))


class TestValidationGating:
    def test_validate_on_mutate_off_skips_checks_on_both_routes(self):
        binding = bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)
        template = Template(binding, "<quantity>$q$</quantity>")
        # 100 violates maxExclusive, but checking is off — both routes
        # accept it and still agree on the bytes.
        assert template.render_text(q=100) == serialize(
            template.render(q=100)
        )

    def test_validate_on_mutate_on_is_the_default(self, po_binding):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        with pytest.raises(VdomTypeError):
            template.render_text(q=100)


class TestRecordRoundTrip:
    def test_program_survives_record_round_trip(self, po_binding):
        template = Template(
            po_binding,
            '<item partNum="$pn$"><productName>$p$</productName>'
            "<quantity>$q$</quantity><USPrice>1.00</USPrice></item>",
        )
        program = template._segments
        record = program_to_record(program, po_binding)
        rebuilt = program_from_record(record, po_binding, program.hole_specs)
        values = {"pn": "872-AA", "p": "Mower & Sons", "q": 3}
        assert rebuilt.render(values, check=True) == program.render(
            values, check=True
        )

    def test_rebuilt_program_still_validates(self, po_binding):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        program = template._segments
        rebuilt = program_from_record(
            program_to_record(program, po_binding),
            po_binding,
            program.hole_specs,
        )
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            rebuilt.render({"q": 100}, check=True)


def _load_demo_templates():
    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples"
        / "render_text_demo.py"
    )
    spec = importlib.util.spec_from_file_location("render_text_demo", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.DEMO_TEMPLATES


class TestExampleCorpusEquivalence:
    """Acceptance sweep: examples/ templates plus randomized hole values."""

    def test_demo_templates_byte_identical(self):
        for schema, source, values in _load_demo_templates():
            binding = bind(schema)
            template = Template(binding, source)
            assert template.render_text(**values) == serialize(
                template.render(**values)
            ), source

    def test_randomized_hole_values(self, po_binding):
        rng = random.Random(20260805)
        alphabet = (
            "abc XYZ 0123 <>&\"' \t\n\r ]]> -- é漢 &amp; <tag attr=\"v\">"
        )
        template = Template(
            po_binding,
            "<shipTo country=\"US\"><name>$n$</name><street>$s$</street>"
            "<city>X</city><state>CA</state><zip>90952</zip></shipTo>",
        )
        for _ in range(50):
            values = {
                hole: "".join(
                    rng.choice(alphabet)
                    for _ in range(rng.randrange(0, 40))
                )
                for hole in ("n", "s")
            }
            assert template.render_text(**values) == serialize(
                template.render(**values)
            ), values


class TestFallbackAccounting:
    """``compile_segments`` swallows only ``_Unsupported`` — and counts it.

    The old blanket ``except Exception: return None`` turned compiler
    bugs into silent DOM fallbacks; now a real bug propagates, and every
    legitimate fallback is visible in ``repro.obs`` with its reason.
    """

    @pytest.fixture()
    def collecting(self):
        from repro import obs

        obs.enable(reset=True)
        yield obs
        obs.disable()
        obs.reset()

    def test_successful_compile_is_counted(self, po_binding, collecting):
        template = Template(po_binding, "<comment>$c$</comment>")
        assert compile_segments(template.checked) is not None
        counters = collecting.snapshot()["counters"]
        assert counters["pxml.segments{outcome=compiled}"] >= 1

    def test_unsupported_shape_counts_reason(self, collecting):
        binding = bind(parse_schema(FIXED_ELEMENT_SCHEMA))
        template = Template(
            binding, "<doc><version>1.0</version><body>$b$</body></doc>"
        )
        assert compile_segments(template.checked) is None
        counters = collecting.snapshot()["counters"]
        key = (
            "pxml.segments"
            "{outcome=fallback,reason=element-level fixed value}"
        )
        assert counters[key] >= 1

    def test_injected_unsupported_falls_back_counted(
        self, po_binding, collecting, monkeypatch
    ):
        from repro.pxml import segments as segments_module

        template = Template(po_binding, "<comment>$c$</comment>")

        def explode(self, element):
            raise segments_module._Unsupported("injected fault")

        monkeypatch.setattr(
            segments_module._SegmentBuilder, "element", explode
        )
        assert compile_segments(template.checked) is None
        counters = collecting.snapshot()["counters"]
        assert counters[
            "pxml.segments{outcome=fallback,reason=injected fault}"
        ] == 1

    def test_real_bugs_propagate(self, po_binding, monkeypatch):
        from repro.pxml import segments as segments_module

        template = Template(po_binding, "<comment>$c$</comment>")

        def explode(self, element):
            raise RuntimeError("builder bug")

        monkeypatch.setattr(
            segments_module._SegmentBuilder, "element", explode
        )
        with pytest.raises(RuntimeError, match="builder bug"):
            compile_segments(template.checked)


class TestFillAndStream:
    """The segment iteration API behind the serve tier's chunked mode."""

    SHIP_TO = (
        '<shipTo country="US"><name>$n$</name>'
        "<street>123 Maple Street</street><city>Mill Valley</city>"
        "<state>CA</state><zip>$z$</zip></shipTo>"
    )

    def test_fill_joins_to_render_text(self, po_binding):
        template = Template(po_binding, self.SHIP_TO)
        values = {"n": "Alice Smith", "z": "90952"}
        pieces = template.stream_text(**values)
        assert pieces is not None
        assert "".join(pieces) == template.render_text(**values)

    def test_static_pieces_are_shared_not_copied(self, po_binding):
        template = Template(po_binding, self.SHIP_TO)
        program = template._segments
        statics = [s for s in program.segments if type(s) is str]
        assert statics  # precomputed markup exists for this shape
        pieces = template.stream_text(n="A", z="90952")
        # Every precomputed static segment appears in the fill by
        # reference — streaming reuses the compile-time strings.
        piece_ids = {id(p) for p in pieces}
        assert all(id(s) in piece_ids for s in statics)

    def test_validation_errors_raise_before_any_piece_exists(
        self, po_binding
    ):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            template.stream_text(q="100")

    def test_element_holes_serialize_into_pieces(self, po_binding):
        template = Template(
            po_binding, "<items>$i$</items>", param_types={"i": "item"}
        )
        item = po_binding.factory.create_item(
            po_binding.factory.create_product_name("Rake"),
            po_binding.factory.create_quantity(2),
            po_binding.factory.create_us_price("12.95"),
            part_num="123-AB",
        )
        pieces = template.stream_text(i=item)
        assert "".join(pieces) == template.render_text(i=item)

    def test_dom_fallback_shapes_return_none(self):
        binding = bind(FIXED_ELEMENT_SCHEMA)
        template = Template(
            binding, "<doc><version>1.0</version><body>$b$</body></doc>"
        )
        assert template.stream_text(b="x") is None
        # The buffered route still renders them.
        assert "<body>x</body>" in template.render_text(b="x")

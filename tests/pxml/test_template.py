"""Template rendering: compiled and interpreted, Fig. 10/11 example."""

import pytest

from repro.dom import serialize
from repro.errors import PxmlStaticError, VdomTypeError
from repro.pxml import Template
from repro.pxml.runtime import render_interpreted
from repro.xsd import SchemaValidator


class TestRenderShipTo:
    TEMPLATE = """\
<shipTo country="US">
  $n$
  <street>123 Maple Street</street>
  <city>Mill Valey</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""

    def test_compiled_render(self, po_binding, po_factory):
        template = Template(po_binding, self.TEMPLATE)
        element = template.render(n=po_factory.create_name("Alice Smith"))
        assert element.name.content == "Alice Smith"
        assert element.get_attribute("country") == "US"

    def test_rendered_fragment_is_schema_valid(self, po_binding, po_factory):
        template = Template(po_binding, self.TEMPLATE)
        element = template.render(n=po_factory.create_name("Alice"))
        declaration = type(element)._DECLARATION
        validator = SchemaValidator(po_binding.schema)
        assert validator.validate_element(element, declaration) == []

    def test_interpreted_equals_compiled(self, po_binding, po_factory):
        template = Template(po_binding, self.TEMPLATE, compiled=True)
        compiled_out = serialize(
            template.render(n=po_factory.create_name("Bob"))
        )
        interpreted_out = serialize(
            render_interpreted(
                template.checked, n=po_factory.create_name("Bob")
            )
        )
        assert compiled_out == interpreted_out

    def test_generated_source_is_fig11_shaped(self, po_binding):
        template = Template(po_binding, self.TEMPLATE)
        source = template.generated_source
        assert "factory.create_ship_to(" in source
        assert "factory.create_street(" in source
        assert "'country': 'US'" in source

    def test_wrong_hole_type_rejected_at_render(self, po_binding, po_factory):
        template = Template(po_binding, self.TEMPLATE)
        with pytest.raises(PxmlStaticError, match="expects an instance"):
            template.render(n=po_factory.create_street("wrong"))

    def test_repr_mentions_holes(self, po_binding):
        template = Template(po_binding, self.TEMPLATE)
        assert "n" in repr(template)


class TestTextHoles:
    def test_text_hole_value_parsed_by_position_type(self, po_binding):
        template = Template(po_binding, "<quantity>$q$</quantity>")
        assert template.render(q=7).value == 7
        with pytest.raises(VdomTypeError, match="maxExclusive"):
            template.render(q=100)

    def test_attribute_hole_concatenation(self, wml_binding):
        template = Template(
            wml_binding, '<option value="/base/$d$">x</option>'
        )
        option = template.render(d="audio")
        assert option.get_attribute("value") == "/base/audio"

    def test_python_values_lexicalized(self, po_binding):
        import datetime

        template = Template(po_binding, "<shipDate>$d$</shipDate>")
        element = template.render(d=datetime.date(1999, 5, 21))
        assert element.content == "1999-05-21"


class TestInterpretedMode:
    def test_uncompiled_template_renders(self, po_binding, po_factory):
        template = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        assert template.generated_source is None
        assert template.render(c="hello").content == "hello"

    def test_missing_hole_value(self, po_binding):
        template = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        with pytest.raises(PxmlStaticError, match="missing values"):
            template.render()

    def test_unknown_hole_value(self, po_binding):
        template = Template(
            po_binding, "<comment>$c$</comment>", compiled=False
        )
        with pytest.raises(PxmlStaticError, match="unknown holes"):
            template.render(c="x", extra="y")


class TestWmlFig10:
    """Sect. 5: the directory page, P-XML version."""

    def test_full_page_pipeline(self, wml_binding):
        factory = wml_binding.factory
        option_template = Template(
            wml_binding, '<option value="$d$">$label:text$</option>'
        )
        select = factory.create_select(
            option_template.render(d="/workspace", label=".."),
            name="directories",
        )
        for sub in ("audio", "video"):
            select.add(
                option_template.render(d=f"/workspace/media/{sub}", label=sub)
            )
        page_template = Template(
            wml_binding,
            "<p><b>$currentDir:text$</b><br/>$s:select$<br/></p>",
        )
        page = page_template.render(currentDir="/workspace/media", s=select)
        rendered = serialize(page)
        assert rendered.count("<option") == 3
        assert "<b>/workspace/media</b>" in rendered

    def test_mixed_content_template(self, wml_binding):
        template = Template(
            wml_binding, "<p>updated: <b>$when:text$</b> ok</p>"
        )
        page = template.render(when="today")
        assert serialize(page) == "<p>updated: <b>today</b> ok</p>"

    def test_render_document_requires_global_root(self, wml_binding):
        template = Template(wml_binding, "<p>x</p>")
        with pytest.raises(VdomTypeError):
            template.render_document()

"""P-XML static checking — the generated preprocessor's front end."""

import pytest

from repro.errors import PxmlStaticError
from repro.pxml import check_template

SHIP_TO_OK = """\
<shipTo country="US">
  <name>Alice Smith</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""


class TestValidTemplates:
    def test_constant_fragment(self, po_binding):
        checked = check_template(po_binding, SHIP_TO_OK)
        assert checked.holes == {}
        assert checked.root_class.__name__ == "ShipToElement"

    def test_whitespace_between_elements_ignored(self, po_binding):
        check_template(
            po_binding, "<items>\n  \n</items>"
        )

    def test_element_hole_inferred_from_position(self, po_binding):
        checked = check_template(
            po_binding,
            "<shipTo>$n$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
        )
        spec = checked.holes["n"]
        assert spec.kind == "element"
        assert spec.classes[0].__name__ == "NameElement"

    def test_text_hole_in_simple_content(self, po_binding):
        checked = check_template(po_binding, "<comment>$c$</comment>")
        assert checked.holes["c"].kind == "text"

    def test_text_hole_in_attribute(self, po_binding):
        checked = check_template(
            po_binding,
            '<item partNum="$p$"><productName>x</productName>'
            "<quantity>1</quantity><USPrice>1.0</USPrice></item>",
        )
        spec = checked.holes["p"]
        assert spec.kind == "text"
        assert spec.simple_type.name == "SKU"

    def test_annotated_element_hole(self, po_binding):
        checked = check_template(
            po_binding,
            "<purchaseOrder>$s:shipTo$<billTo><name>n</name>"
            "<street>s</street><city>c</city><state>st</state>"
            "<zip>1</zip></billTo>$i:items$</purchaseOrder>",
        )
        assert checked.holes["s"].classes[0].__name__ == "ShipToElement"
        assert checked.holes["i"].classes[0].__name__ == "ItemsElement"

    def test_param_types_instead_of_annotations(self, po_binding):
        checked = check_template(
            po_binding,
            "<shipTo>$n$<street>s</street><city>c</city>"
            "<state>st</state><zip>1</zip></shipTo>",
            param_types={"n": "name"},
        )
        assert checked.holes["n"].classes[0].__name__ == "NameElement"

    def test_group_typed_hole(self, wml_binding):
        checked = check_template(
            wml_binding,
            "<p>$x:PTypeCC1Group$</p>",
        )
        names = {cls.__name__ for cls in checked.holes["x"].classes}
        assert "SelectElement" in names
        assert "AElement" in names

    def test_static_facet_check_on_literal_attribute(self, po_binding):
        with pytest.raises(PxmlStaticError, match="pattern"):
            check_template(
                po_binding,
                '<item partNum="WRONG"><productName>x</productName>'
                "<quantity>1</quantity><USPrice>1.0</USPrice></item>",
            )

    def test_static_simple_content_check(self, po_binding):
        with pytest.raises(PxmlStaticError, match="positiveInteger|maxExclusive"):
            check_template(po_binding, "<quantity>200</quantity>")


class TestRejectedTemplates:
    def test_wrong_child_order(self, po_binding):
        with pytest.raises(PxmlStaticError, match="not allowed here"):
            check_template(
                po_binding,
                "<shipTo><street>s</street><name>n</name><city>c</city>"
                "<state>st</state><zip>1</zip></shipTo>",
            )

    def test_incomplete_content(self, po_binding):
        with pytest.raises(PxmlStaticError, match="incomplete"):
            check_template(po_binding, "<shipTo><name>n</name></shipTo>")

    def test_unknown_element(self, po_binding):
        with pytest.raises(PxmlStaticError, match="not declared"):
            check_template(po_binding, "<bogus/>")

    def test_undeclared_attribute(self, po_binding):
        with pytest.raises(PxmlStaticError, match="not declared"):
            check_template(po_binding, '<comment color="red">x</comment>')

    def test_missing_required_attribute(self, po_binding):
        with pytest.raises(PxmlStaticError, match="required"):
            check_template(
                po_binding,
                "<item><productName>x</productName><quantity>1</quantity>"
                "<USPrice>1.0</USPrice></item>",
            )

    def test_fixed_attribute_mismatch(self, po_binding):
        with pytest.raises(PxmlStaticError, match="fixed"):
            check_template(
                po_binding,
                '<shipTo country="DE"><name>n</name><street>s</street>'
                "<city>c</city><state>st</state><zip>1</zip></shipTo>",
            )

    def test_text_in_element_only_content(self, po_binding):
        with pytest.raises(PxmlStaticError, match="element-only"):
            check_template(po_binding, "<items>words</items>")

    def test_text_hole_in_element_only_content(self, po_binding):
        with pytest.raises(PxmlStaticError, match="text hole"):
            check_template(po_binding, "<items>$x:text$</items>")

    def test_ambiguous_hole_requires_annotation(self, po_binding):
        # After shipTo/billTo, both comment and items are acceptable.
        with pytest.raises(PxmlStaticError, match="ambiguous"):
            check_template(
                po_binding,
                "<purchaseOrder>$a:shipTo$$b:billTo$$c$</purchaseOrder>",
            )

    def test_mixed_content_hole_requires_annotation(self, wml_binding):
        with pytest.raises(PxmlStaticError, match="annotate"):
            check_template(wml_binding, "<p>$x$</p>")

    def test_conflicting_hole_reuse(self, po_binding):
        with pytest.raises(PxmlStaticError, match="conflicting"):
            check_template(
                po_binding,
                "<item partNum='123-AB'><productName>$x:text$</productName>"
                "<quantity>1</quantity><USPrice>1.0</USPrice>"
                "$x:comment$</item>",
            )

    def test_bad_annotation(self, po_binding):
        with pytest.raises(PxmlStaticError, match="names no element"):
            check_template(po_binding, "<items>$x:nonsense$</items>")

    def test_annotation_must_be_text_in_simple_content(self, po_binding):
        with pytest.raises(PxmlStaticError, match="must be text"):
            check_template(po_binding, "<comment>$x:nonsense$</comment>")

    def test_hole_for_element_of_other_declaration(self, po_binding):
        # 'name' exists, but not inside items.
        with pytest.raises(PxmlStaticError):
            check_template(po_binding, "<items>$n:name$</items>")


class TestChoiceWalks:
    def test_choice_hole_union_states(self, choice_binding):
        checked = check_template(
            choice_binding,
            "<purchaseOrder>$addr:PurchaseOrderTypeCC1Group$"
            "$i:items$</purchaseOrder>",
        )
        names = {cls.__name__ for cls in checked.holes["addr"].classes}
        assert names == {"SingAddrElement", "TwoAddrElement"}

    def test_concrete_alternative_also_fine(self, choice_binding):
        check_template(
            choice_binding,
            "<purchaseOrder><singAddr><name>n</name><street>s</street>"
            "<city>c</city><state>st</state><zip>1</zip></singAddr>"
            "$i:items$</purchaseOrder>",
        )

    def test_substitution_member_usable_for_ref(self, subst_binding):
        check_template(
            subst_binding,
            "<notes><shipComment>by sea</shipComment></notes>",
        )
